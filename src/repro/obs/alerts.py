"""Declarative alert rules evaluated against metric snapshots.

The judgment layer of the live telemetry pipeline: a set of
:class:`AlertRule` objects is evaluated against every snapshot a
:class:`~repro.obs.snapshots.SnapshotStreamer` produces, and rule state
transitions are emitted as structured ``alert.fired`` /
``alert.resolved`` events into the run's existing event log — so alerts
are sim-time-stamped, deterministic, and land in the same
``events.jsonl`` the rest of the tooling already reads.

Three rule kinds cover the operational questions WiScape's coordinator
needs answered (PAPER.md §3-4; AP-side analytics systems make the same
split):

* ``threshold`` — the metric's current value breaches ``op value``
  ("more than N streams under-covered");
* ``rate`` — the metric's per-sim-second rate of change between
  consecutive snapshots breaches ``op value`` ("reports have stopped
  arriving");
* ``absence`` — the metric is missing from the snapshot entirely ("the
  coordinator never came up").

``metric`` may be an ``fnmatch`` pattern (``validator.reject.*``); each
matching metric tracks its own independent fire/resolve state.  A rule
fires only after ``for_count`` *consecutive* breaching snapshots, which
is how "under-covered for 2 consecutive epochs" style judgments are
expressed without the engine knowing about epochs.

Rules load from JSON always, and from TOML on interpreters that ship
``tomllib`` (3.11+); see ``examples/alert_rules.toml``.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.telemetry import Telemetry

__all__ = [
    "AlertRule",
    "AlertEngine",
    "load_rules",
    "parse_rules",
]

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_KINDS = ("threshold", "rate", "absence")


@dataclass(frozen=True)
class AlertRule:
    """One declarative judgment over a metric name or pattern."""

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"
    value: float = 0.0
    #: Consecutive breaching snapshots before the alert fires.
    for_count: int = 1
    severity: str = "warning"

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if self.kind != "absence" and self.op not in _OPS:
            raise ValueError(
                f"rule {self.name!r}: unknown op {self.op!r} "
                f"(expected one of {', '.join(_OPS)})"
            )
        if self.for_count < 1:
            raise ValueError(f"rule {self.name!r}: for_count must be >= 1")


class _RuleState:
    """Fire/resolve bookkeeping for one (rule, resolved metric) pair."""

    __slots__ = ("breaches", "firing", "fired_at_s")

    def __init__(self):
        self.breaches = 0
        self.firing = False
        self.fired_at_s = 0.0


class AlertEngine:
    """Evaluates alert rules against successive snapshots.

    Subscribe :meth:`evaluate` to a ``SnapshotStreamer``.  Evaluation
    order is deterministic (rules in declaration order, matched metrics
    sorted), so two identical runs emit identical alert sequences.
    """

    def __init__(self, rules: Iterable[AlertRule], telemetry: Telemetry):
        self.rules: List[AlertRule] = list(rules)
        self.telemetry = telemetry
        self._state: Dict[Tuple[str, str], _RuleState] = {}
        self._prev: Optional[dict] = None
        #: Chronological record of transitions: (t, "fired"/"resolved",
        #: rule name, metric, value).  The CLI prints this at run end.
        self.transitions: List[Tuple[float, str, str, str, float]] = []

    # -- introspection ---------------------------------------------------

    def active(self) -> List[Tuple[str, str]]:
        """Currently-firing (rule name, metric) pairs, sorted."""
        return sorted(k for k, s in self._state.items() if s.firing)

    # -- evaluation ------------------------------------------------------

    def _targets(self, rule: AlertRule, values: Dict[str, float]) -> List[str]:
        if any(ch in rule.metric for ch in "*?["):
            return sorted(n for n in values if fnmatchcase(n, rule.metric))
        return [rule.metric] if rule.metric in values else []

    def _breach(
        self, rule: AlertRule, metric: str, values: Dict[str, float], dt: float
    ) -> Tuple[bool, float]:
        value = values[metric]
        if rule.kind == "threshold":
            return _OPS[rule.op](value, rule.value), value
        # rate: per-sim-second change since the previous snapshot; the
        # first snapshot has no baseline and never breaches.
        if self._prev is None or dt <= 0:
            return False, 0.0
        prev_values = self._prev.get("counters", {}).get(metric)
        if prev_values is None:
            prev_values = self._prev.get("gauges", {}).get(metric)
        if prev_values is None:
            return False, 0.0
        rate = (value - prev_values) / dt
        return _OPS[rule.op](rate, rule.value), rate

    def evaluate(self, snap: dict) -> List[dict]:
        """Judge one snapshot; returns the transitions it caused.

        Every transition is also emitted into the telemetry event log as
        an ``alert.fired`` or ``alert.resolved`` event and counted in
        the ``obs.alerts_fired`` / ``obs.alerts_resolved`` counters.
        """
        t = float(snap.get("t", 0.0))
        dt = t - float(self._prev.get("t", t)) if self._prev else 0.0
        values: Dict[str, float] = {}
        values.update(snap.get("counters", {}))
        values.update(snap.get("gauges", {}))
        out: List[dict] = []
        for rule in self.rules:
            if rule.kind == "absence":
                targets = self._targets(rule, values)
                breach = not targets
                out.extend(
                    self._transition(rule, rule.metric, breach, 0.0, t)
                )
                continue
            targets = self._targets(rule, values)
            for metric in targets:
                breach, value = self._breach(rule, metric, values, dt)
                out.extend(self._transition(rule, metric, breach, value, t))
            # A previously-seen metric vanishing from the snapshot ends
            # its breach streak (and resolves it if firing).
            for (name, metric), state in list(self._state.items()):
                if name == rule.name and metric not in targets and (
                    state.firing or state.breaches
                ):
                    if rule.kind != "absence":
                        out.extend(
                            self._transition(rule, metric, False, 0.0, t)
                        )
        self._prev = snap
        return out

    def _transition(
        self, rule: AlertRule, metric: str, breach: bool, value: float, t: float
    ) -> List[dict]:
        state = self._state.get((rule.name, metric))
        if state is None:
            state = self._state[(rule.name, metric)] = _RuleState()
        events: List[dict] = []
        if breach:
            state.breaches += 1
            if not state.firing and state.breaches >= rule.for_count:
                state.firing = True
                state.fired_at_s = t
                events.append(self._emit("alert.fired", rule, metric, value, t))
        else:
            state.breaches = 0
            if state.firing:
                state.firing = False
                events.append(
                    self._emit("alert.resolved", rule, metric, value, t)
                )
        return events

    def _emit(
        self, transition: str, rule: AlertRule, metric: str, value: float, t: float
    ) -> dict:
        # "kind" is the event-log envelope key (alert.fired/alert.resolved),
        # so the rule's own kind travels as rule_kind.
        fields = {
            "rule": rule.name,
            "metric": metric,
            "rule_kind": rule.kind,
            "severity": rule.severity,
            "value": float(value),
            "op": rule.op,
            "threshold": float(rule.value),
        }
        self.telemetry.emit(transition, t, **fields)
        short = "fired" if transition == "alert.fired" else "resolved"
        self.telemetry.metrics.counter(f"obs.alerts_{short}").inc()
        self.transitions.append((t, short, rule.name, metric, float(value)))
        return {"t": t, "transition": short, **fields}


# -- rule loading ----------------------------------------------------------


def parse_rules(data: dict) -> List[AlertRule]:
    """Build rules from a parsed config mapping ``{"rules": [...]}``."""
    raw = data.get("rules")
    if not isinstance(raw, list):
        raise ValueError("alert config must contain a 'rules' list")
    rules = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ValueError(f"rule #{i} must be a table/object")
        unknown = set(entry) - {
            "name", "metric", "kind", "op", "value", "for_count", "severity"
        }
        if unknown:
            raise ValueError(
                f"rule #{i}: unknown key(s) {', '.join(sorted(unknown))}"
            )
        try:
            rules.append(
                AlertRule(
                    name=str(entry["name"]),
                    metric=str(entry["metric"]),
                    kind=str(entry.get("kind", "threshold")),
                    op=str(entry.get("op", ">")),
                    value=float(entry.get("value", 0.0)),
                    for_count=int(entry.get("for_count", 1)),
                    severity=str(entry.get("severity", "warning")),
                )
            )
        except KeyError as exc:
            raise ValueError(f"rule #{i}: missing required key {exc}") from exc
    return rules


def load_rules(path) -> List[AlertRule]:
    """Load alert rules from a ``.toml`` or ``.json`` file."""
    text = open(path, "r", encoding="utf-8").read()
    if str(path).endswith(".toml"):
        try:
            import tomllib
        except ImportError as exc:  # Python < 3.11
            raise RuntimeError(
                "TOML alert rules need Python >= 3.11 (tomllib); "
                "use a .json rules file on this interpreter"
            ) from exc
        data = tomllib.loads(text)
    else:
        data = json.loads(text)
    return parse_rules(data)
