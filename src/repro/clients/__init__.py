"""Client side of WiScape: devices, the task/report protocol, the agent.

A client is a device (laptop / single-board computer / phone class, each
with its own radio front-end bias) riding a movement model.  It
periodically tells the coordinator which coarse zone it is in, receives
measurement tasks, runs them over its cellular interfaces, and reports
results tagged with a GPS fix — exactly the user-agent the paper
envisions bundled with NIC drivers (section 3.4).
"""

from repro.clients.device import (
    Device,
    DeviceCategory,
    default_profile,
)
from repro.clients.protocol import (
    MeasurementReport,
    MeasurementTask,
    MeasurementType,
)
from repro.clients.agent import ClientAgent
from repro.clients.energy import EnergyMeter, RadioEnergyModel
from repro.clients.normalize import CategoryNormalizer, CategoryObservation

__all__ = [
    "Device",
    "DeviceCategory",
    "default_profile",
    "MeasurementReport",
    "MeasurementTask",
    "MeasurementType",
    "ClientAgent",
    "EnergyMeter",
    "RadioEnergyModel",
    "CategoryNormalizer",
    "CategoryObservation",
]
