"""Zone-coverage SLOs: is WiScape actually hearing its zones?

The paper's central operational requirement is that every (zone, epoch)
cell accumulate *enough* samples to publish a trustworthy estimate —
around n≈10 usable samples is the floor the zone-map analyses demand
(PAPER.md §3.3, §4.1) — and that the coordinator notice when a cell goes
quiet.  :class:`SloTracker` turns the coordinator's per-tick bookkeeping
into two service-level signals per stream:

* **coverage** — did the epoch that just closed collect at least
  ``min_epoch_samples`` while clients were actually present in the zone
  ("demanded")?  Consecutive demanded-but-under-covered epochs are the
  paper-grounded breach condition ("zone under-covered for 2
  consecutive epochs").
* **staleness** — sim seconds since the stream last accepted a sample,
  again scoped to demanded streams: a zone no bus visits cannot be
  measured at all (that is opportunistic reality, not an SLO breach),
  but a zone with clients present and no data is a blackout.

Demand scoping is what lets a blackout alert *resolve*: when clients
leave a zone for good its stream drops out of the demanded set and
stops holding the worst-case gauges hostage; when clients are present
and sampling resumes, one covered epoch resets the breach streak.

The tracker exposes aggregates as plain gauges (``slo.*``) so the alert
engine needs no special SLO knowledge — :func:`default_slo_rules`
returns threshold rules over those gauges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.alerts import AlertRule

__all__ = ["SloPolicy", "SloTracker", "StreamSlo", "default_slo_rules"]


@dataclass(frozen=True)
class SloPolicy:
    """Targets the coverage/staleness judgments are made against."""

    #: Minimum accepted samples a (zone, epoch) needs to count as
    #: covered — the paper's n≈10 floor for a usable cell estimate.
    min_epoch_samples: int = 10
    #: Consecutive demanded-but-under-covered epochs before the stream
    #: counts as in breach (the default under-coverage alert).
    under_epochs: int = 2
    #: Demanded-stream staleness beyond this is an outage signal.
    staleness_limit_s: float = 3600.0

    def __post_init__(self):
        if self.min_epoch_samples < 1:
            raise ValueError("min_epoch_samples must be >= 1")
        if self.under_epochs < 1:
            raise ValueError("under_epochs must be >= 1")
        if self.staleness_limit_s <= 0:
            raise ValueError("staleness_limit_s must be positive")


class StreamSlo:
    """Per-(zone, network, metric) coverage state."""

    __slots__ = (
        "first_demand_s",
        "last_sample_s",
        "consecutive_under",
        "demanded",
        "epochs_closed",
        "epochs_under",
    )

    def __init__(self):
        self.first_demand_s: Optional[float] = None
        self.last_sample_s: Optional[float] = None
        self.consecutive_under = 0
        self.demanded = False
        self.epochs_closed = 0
        self.epochs_under = 0

    def staleness_s(self, now_s: float) -> float:
        """Sim time since the last accepted sample (or first demand)."""
        anchor = self.last_sample_s
        if anchor is None:
            anchor = self.first_demand_s
        return max(0.0, now_s - anchor) if anchor is not None else 0.0


class SloTracker:
    """Coverage/staleness bookkeeping the coordinator drives per tick."""

    def __init__(self, policy: Optional[SloPolicy] = None):
        self.policy = policy or SloPolicy()
        self._streams: Dict[object, StreamSlo] = {}

    def _stream(self, key) -> StreamSlo:
        s = self._streams.get(key)
        if s is None:
            s = self._streams[key] = StreamSlo()
        return s

    def __len__(self) -> int:
        return len(self._streams)

    def stream(self, key) -> Optional[StreamSlo]:
        """Introspection: the state for one stream (None if never seen)."""
        return self._streams.get(key)

    # -- bookkeeping hooks (called by the coordinator) -------------------

    def note_demand(self, key, now_s: float) -> None:
        """Clients are present in the stream's zone this tick."""
        s = self._stream(key)
        s.demanded = True
        if s.first_demand_s is None:
            s.first_demand_s = now_s

    def note_samples(self, key, n: int, now_s: float) -> None:
        """The stream accepted ``n`` samples at ``now_s``."""
        s = self._stream(key)
        if s.last_sample_s is None or now_s > s.last_sample_s:
            s.last_sample_s = now_s

    def note_epoch_close(
        self, key, n_samples: int, now_s: float, n_epochs: int = 1
    ) -> None:
        """One or more epoch windows closed with ``n_samples`` total.

        Coverage is only judged while the stream is demanded: an
        undemanded close clears both the demand flag and the breach
        streak (clients left; the zone is unmeasurable, not failing).
        """
        s = self._stream(key)
        s.epochs_closed += n_epochs
        if s.demanded:
            if n_samples < self.policy.min_epoch_samples:
                s.consecutive_under += n_epochs
                s.epochs_under += n_epochs
            else:
                s.consecutive_under = 0
        else:
            s.consecutive_under = 0
        s.demanded = False

    # -- aggregation -----------------------------------------------------

    def update_gauges(self, metrics, now_s: float) -> None:
        """Publish the aggregate SLO gauges into a metrics registry."""
        demanded = 0
        under = 0
        worst_consecutive = 0
        max_staleness = 0.0
        stale = 0
        for s in self._streams.values():
            if s.consecutive_under > worst_consecutive:
                worst_consecutive = s.consecutive_under
            if s.consecutive_under >= self.policy.under_epochs:
                under += 1
            if not s.demanded:
                continue
            demanded += 1
            staleness = s.staleness_s(now_s)
            if staleness > max_staleness:
                max_staleness = staleness
            if staleness > self.policy.staleness_limit_s:
                stale += 1
        metrics.gauge("slo.streams").set(len(self._streams))
        metrics.gauge("slo.demanded_streams").set(demanded)
        metrics.gauge("slo.under_covered_streams").set(under)
        metrics.gauge("slo.worst_consecutive_under_epochs").set(
            worst_consecutive
        )
        metrics.gauge("slo.max_staleness_s").set(max_staleness)
        metrics.gauge("slo.stale_streams").set(stale)
        covered = max(0.0, 1.0 - under / demanded) if demanded else 1.0
        metrics.gauge("slo.covered_fraction").set(covered)


def default_slo_rules(policy: Optional[SloPolicy] = None) -> List[AlertRule]:
    """The alert rules every live run watches by default."""
    p = policy or SloPolicy()
    return [
        AlertRule(
            name="slo.under_coverage",
            metric="slo.worst_consecutive_under_epochs",
            kind="threshold",
            op=">=",
            value=float(p.under_epochs),
            for_count=1,
            severity="critical",
        ),
        AlertRule(
            name="slo.staleness",
            metric="slo.max_staleness_s",
            kind="threshold",
            op=">",
            value=float(p.staleness_limit_s),
            for_count=2,
            severity="warning",
        ),
    ]
