"""Generate ``docs/API.md`` from the public surface of ``repro``.

Walks every module under the ``repro`` package, collects its public
symbols (``__all__`` when declared, otherwise top-level names that do
not start with an underscore and were defined in that module), and
renders one reference section per module: each symbol's signature plus
the first line of its docstring.  The output is deterministic — sorted
module and symbol order, no timestamps — so the generated file can be
committed and diffed.

Usage::

    PYTHONPATH=src python tools/gen_api_docs.py           # rewrite docs/API.md
    PYTHONPATH=src python tools/gen_api_docs.py --check   # CI staleness gate

``--check`` regenerates in memory and exits 1 if ``docs/API.md`` on
disk differs, printing the command that refreshes it.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
OUT_PATH = REPO_ROOT / "docs" / "API.md"

HEADER = """\
# `repro` API reference

One section per module, one entry per public symbol: the signature and
the first line of the docstring.  **Generated — do not edit by hand.**
Regenerate with::

    PYTHONPATH=src python tools/gen_api_docs.py

CI runs the same script with ``--check`` and fails if this file is
stale relative to the source tree.
"""


def iter_module_names(package="repro"):
    """Sorted dotted names of ``package`` and every submodule under it."""
    root = importlib.import_module(package)
    names = {package}
    for info in pkgutil.walk_packages(root.__path__, prefix=package + "."):
        # ``__main__`` modules execute their CLI on import.
        if info.name.rsplit(".", 1)[-1] == "__main__":
            continue
        names.add(info.name)
    return sorted(names)


def public_symbols(module):
    """``(name, object)`` pairs of the module's public surface, sorted.

    Honors ``__all__`` when declared; otherwise takes non-underscore
    top-level names whose ``__module__`` matches (so re-exports in
    package ``__init__`` files with ``__all__`` are kept, but implicit
    imports are not double-documented).
    """
    declared = getattr(module, "__all__", None)
    out = []
    for name in sorted(declared if declared is not None else vars(module)):
        if name.startswith("_"):
            continue
        try:
            obj = getattr(module, name)
        except AttributeError:
            continue
        if declared is None:
            if inspect.ismodule(obj):
                continue
            if getattr(obj, "__module__", module.__name__) != module.__name__:
                continue
            if not callable(obj) and not inspect.isclass(obj):
                continue
        out.append((name, obj))
    return out


def _signature(obj):
    """``name(args)`` best effort; classes use ``__init__``'s arguments."""
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _first_doc_line(obj):
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def _render_symbol(name, obj, lines):
    kind = "class" if inspect.isclass(obj) else (
        "function" if callable(obj) else "data")
    if kind == "data":
        lines.append(f"- `{name}` — {_first_doc_line(obj)}".rstrip(" —"))
        return
    sig = _signature(obj)
    doc = _first_doc_line(obj)
    lines.append(f"- **`{name}{sig}`** ({kind})")
    if doc:
        lines.append(f"  — {doc}")
    if inspect.isclass(obj):
        for mname, member in sorted(vars(obj).items()):
            if mname.startswith("_"):
                continue
            if not (inspect.isfunction(member) or isinstance(
                    member, (classmethod, staticmethod, property))):
                continue
            if isinstance(member, property):
                mdoc = _first_doc_line(member)
                lines.append(f"  - `.{mname}` (property)"
                             + (f" — {mdoc}" if mdoc else ""))
                continue
            fn = member.__func__ if isinstance(
                member, (classmethod, staticmethod)) else member
            mdoc = _first_doc_line(fn)
            lines.append(f"  - `.{mname}{_signature(fn)}`"
                         + (f" — {mdoc}" if mdoc else ""))


def render(package="repro"):
    """The full markdown document as a string."""
    lines = [HEADER]
    for mod_name in iter_module_names(package):
        try:
            module = importlib.import_module(mod_name)
        except Exception as exc:  # pragma: no cover - import-broken module
            lines.append(f"## `{mod_name}`\n\n*import failed: {exc}*\n")
            continue
        symbols = public_symbols(module)
        if not symbols:
            continue
        lines.append(f"## `{mod_name}`")
        mod_doc = _first_doc_line(module)
        if mod_doc:
            lines.append(f"\n{mod_doc}\n")
        else:
            lines.append("")
        for name, obj in symbols:
            _render_symbol(name, obj, lines)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if docs/API.md is stale")
    parser.add_argument("--out", default=str(OUT_PATH),
                        help="output path (default docs/API.md)")
    args = parser.parse_args(argv)

    if str(SRC_ROOT) not in sys.path:
        sys.path.insert(0, str(SRC_ROOT))
    text = render()
    out = Path(args.out)
    if args.check:
        on_disk = out.read_text() if out.exists() else ""
        if on_disk != text:
            print(
                f"{out} is stale — regenerate with:\n"
                "    PYTHONPATH=src python tools/gen_api_docs.py",
                file=sys.stderr,
            )
            return 1
        print(f"{out} is up to date")
        return 0
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    print(f"wrote {out} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
