"""Synthetic dataset generation (paper Table 2).

Each ``DatasetGenerator`` method reproduces one of the paper's trace
collections by driving the corresponding client platform over the
ground-truth landscape and logging the same measurements the paper's
nodes ran.  All generation is deterministic in (landscape seed,
generator seed); volumes are scaled down from the paper's year to keep
benches fast, with the collection *pattern* preserved.
"""

from __future__ import annotations

import functools
import itertools
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.clients.agent import ClientAgent
from repro.clients.device import Device, DeviceCategory
from repro.clients.protocol import MeasurementTask, MeasurementType
from repro.datasets.records import TraceRecord
from repro.geo.coords import GeoPoint
from repro.geo.regions import madison_spot_locations, new_jersey_spots
from repro.mobility.models import ProximateLoop, StaticPosition
from repro.mobility.routes import Route, city_bus_routes
from repro.mobility.vehicles import Car, IntercityBus, TransitBus
from repro.obs.telemetry import get_telemetry
from repro.radio.network import Landscape
from repro.radio.technology import NetworkId
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.rng import derive_seed

ALL_NETWORKS = (NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C)
BC_NETWORKS = (NetworkId.NET_B, NetworkId.NET_C)


def _traced(fn):
    """Wrap a dataset builder in a ``datasets.<name>`` tracing span."""
    span_name = f"datasets.{fn.__name__}"

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with get_telemetry().span(span_name):
            return fn(*args, **kwargs)

    return wrapper


class DatasetGenerator:
    """Generates the paper's seven datasets against one landscape."""

    def __init__(self, landscape: Landscape, seed: int = 0):
        self.landscape = landscape
        self.seed = int(seed)
        self._task_ids = itertools.count(1)

    # -- helpers -----------------------------------------------------------

    def _agent(
        self,
        client_id: str,
        movement,
        networks: Sequence[NetworkId],
        category: DeviceCategory = DeviceCategory.LAPTOP_USB,
    ) -> ClientAgent:
        device = Device(
            device_id=client_id,
            category=category,
            networks=networks,
            seed=derive_seed(self.seed, f"dev:{client_id}"),
        )
        return ClientAgent(
            client_id=client_id,
            device=device,
            movement=movement,
            landscape=self.landscape,
            seed=derive_seed(self.seed, f"agent:{client_id}"),
        )

    def _task(
        self,
        network: NetworkId,
        kind: MeasurementType,
        t: float,
        **params: float,
    ) -> MeasurementTask:
        return MeasurementTask(
            task_id=next(self._task_ids),
            network=network,
            kind=kind,
            issued_at_s=t,
            params=dict(params),
        )

    def _measure(
        self,
        dataset: str,
        agent: ClientAgent,
        network: NetworkId,
        kind: MeasurementType,
        t: float,
        **params: float,
    ) -> Optional[TraceRecord]:
        report = agent.execute(self._task(network, kind, t, **params), t)
        tel = get_telemetry()
        if report is None:
            if tel.enabled:
                tel.metrics.counter("datasets.measurements_refused").inc()
            return None
        if tel.enabled:
            tel.metrics.counter("datasets.measurements").inc()
        return TraceRecord.from_report(dataset, report)

    @staticmethod
    def _day_times(
        days: int, interval_s: float, start_h: float, end_h: float
    ) -> Iterator[float]:
        """Sample times over ``days`` service days, every ``interval_s``."""
        per_day = int((end_h - start_h) * 3600.0 // interval_s)
        for day in range(days):
            base = day * SECONDS_PER_DAY + start_h * 3600.0
            for k in range(per_day):
                yield base + k * interval_s

    def _warm(
        self,
        movement,
        times: Sequence[float],
        networks: Sequence[NetworkId],
    ) -> None:
        """Precompute point-cache entries along a client's trajectory.

        Agents measure at their *true* positions (GPS noise only skews
        the reported coordinates), so warming with ``movement.position``
        samples makes every subsequent measurement a cache hit: the
        expensive per-point spatial math for a whole day of driving runs
        once, vectorized, up front.
        """
        tel = get_telemetry()
        with tel.span("datasets.warm"):
            pts = [movement.position(t) for t in times]
            if pts:
                self.landscape.warm_cache(pts, nets=networks)
        if tel.enabled:
            tel.metrics.counter("datasets.warm_points").inc(len(times))

    # -- Wide-area ----------------------------------------------------------

    @_traced
    def standalone(
        self,
        days: int = 12,
        n_buses: int = 8,
        n_routes: int = 10,
        interval_s: float = 120.0,
        tcp_size_bytes: int = 1_000_000,
        ping_count: int = 5,
    ) -> List[TraceRecord]:
        """Standalone: transit buses, NetB only, TCP 1 MB + ICMP pings.

        The paper's largest (11-month) dataset; this scaled-down version
        preserves the pattern: each bus randomly re-assigned to a route
        daily, measuring on a fixed cadence through an 18-hour service
        day.
        """
        routes = city_bus_routes(self.landscape.study_area, count=n_routes)
        records: List[TraceRecord] = []
        for b in range(n_buses):
            bus = TransitBus(
                bus_id=b, routes=routes, seed=derive_seed(self.seed, f"sa:{b}")
            )
            agent = self._agent(
                f"standalone-bus-{b}", bus, [NetworkId.NET_B],
                category=DeviceCategory.SBC_PCMCIA,
            )
            times = list(self._day_times(days, interval_s, 6.0, 24.0))
            self._warm(
                bus,
                times + [t + interval_s / 2.0 for t in times],
                [NetworkId.NET_B],
            )
            for t in times:
                rec = self._measure(
                    "standalone", agent, NetworkId.NET_B,
                    MeasurementType.TCP_DOWNLOAD, t, size_bytes=tcp_size_bytes,
                )
                if rec:
                    records.append(rec)
                rec = self._measure(
                    "standalone", agent, NetworkId.NET_B,
                    MeasurementType.PING, t + interval_s / 2.0,
                    count=ping_count, interval_s=1.0,
                )
                if rec:
                    records.append(rec)
        return records

    @_traced
    def wirover(
        self,
        days: int = 7,
        n_city_buses: int = 5,
        n_intercity: int = 2,
        series_interval_s: float = 60.0,
        pings_per_series: int = 12,
    ) -> List[TraceRecord]:
        """WiRover: city + intercity buses, NetB and NetC, UDP pings only.

        The paper collected ~12 pings a minute and no throughput (to
        avoid competing with passenger traffic).  One record per
        per-minute series carries the mean RTT, individual samples, and
        the vehicle speed at series start.
        """
        routes = city_bus_routes(self.landscape.study_area, count=8)
        vehicles = [
            (
                f"wirover-bus-{b}",
                TransitBus(
                    bus_id=100 + b,
                    routes=routes,
                    seed=derive_seed(self.seed, f"wr:{b}"),
                ),
            )
            for b in range(n_city_buses)
        ]
        if self.landscape.road is not None:
            road_route = Route(
                name="madison-chicago", waypoints=self.landscape.road.waypoints
            )
            for i in range(n_intercity):
                vehicles.append(
                    (
                        f"wirover-coach-{i}",
                        IntercityBus(
                            bus_id=i,
                            road=road_route,
                            depart_hour=7.5 + 2.0 * i,
                            seed=derive_seed(self.seed, f"ic:{i}"),
                        ),
                    )
                )
        records: List[TraceRecord] = []
        for client_id, vehicle in vehicles:
            agent = self._agent(
                client_id, vehicle, list(BC_NETWORKS),
                category=DeviceCategory.SBC_PCMCIA,
            )
            times = list(self._day_times(days, series_interval_s, 6.0, 24.0))
            self._warm(vehicle, times, BC_NETWORKS)
            for t in times:
                for net in BC_NETWORKS:
                    rec = self._measure(
                        "wirover", agent, net, MeasurementType.PING, t,
                        count=pings_per_series,
                        interval_s=series_interval_s / pings_per_series / 2.0,
                    )
                    if rec:
                        records.append(rec)
        return records

    # -- Spot -----------------------------------------------------------------

    @_traced
    def static_spot(
        self,
        location: GeoPoint,
        label: str,
        networks: Sequence[NetworkId] = ALL_NETWORKS,
        days: int = 2,
        interval_s: float = 10.0,
        udp_packets: int = 50,
        tcp_size_bytes: int = 250_000,
    ) -> List[TraceRecord]:
        """Static: a fixed indoor node sampling continuously (10 s bins).

        Produces alternating UDP-train and TCP-download records per
        interval per network — the fine-timescale series behind the
        paper's Table 4 and the Allan-deviation epochs of Fig 6.
        """
        agent = self._agent(f"static-{label}", StaticPosition(location), networks)
        self.landscape.warm_cache([location], nets=list(networks))
        records: List[TraceRecord] = []
        for t in self._day_times(days, interval_s, 0.0, 24.0):
            slot = int(t // interval_s)
            for net in networks:
                if slot % 2 == 0:
                    rec = self._measure(
                        f"static-{label}", agent, net,
                        MeasurementType.UDP_TRAIN, t,
                        n_packets=udp_packets,
                    )
                else:
                    rec = self._measure(
                        f"static-{label}", agent, net,
                        MeasurementType.TCP_DOWNLOAD, t,
                        size_bytes=tcp_size_bytes,
                    )
                if rec:
                    records.append(rec)
        return records

    @_traced
    def proximate(
        self,
        center: GeoPoint,
        label: str,
        networks: Sequence[NetworkId] = ALL_NETWORKS,
        days: int = 3,
        interval_s: float = 45.0,
        udp_packets: int = 100,
    ) -> List[TraceRecord]:
        """Proximate: a car circling within 250 m of a static location.

        UDP trains with per-packet samples — the data behind the NKLD
        composability analysis (Fig 7) and packet-count search (Table 5).
        """
        loop = ProximateLoop(
            center, radius_m=200.0, seed=derive_seed(self.seed, f"prox:{label}")
        )
        agent = self._agent(f"proximate-{label}", loop, networks)
        times = list(self._day_times(days, interval_s, 0.0, 24.0))
        self._warm(loop, times, networks)
        records: List[TraceRecord] = []
        for t in times:
            for net in networks:
                rec = self._measure(
                    f"proximate-{label}", agent, net,
                    MeasurementType.UDP_TRAIN, t,
                    n_packets=udp_packets,
                )
                if rec:
                    records.append(rec)
        return records

    # -- Region -----------------------------------------------------------------

    @_traced
    def short_segment(
        self,
        networks: Sequence[NetworkId] = ALL_NETWORKS,
        days: int = 10,
        interval_s: float = 30.0,
        tcp_size_bytes: int = 500_000,
    ) -> List[TraceRecord]:
        """Short segment: a car repeatedly driving the 20 km road stretch.

        TCP downloads on all three carriers every ``interval_s`` while
        driving — the data behind the road dominance map (Figs 12-13).
        """
        from repro.geo.regions import short_segment_road

        road = short_segment_road()
        route = Route(name=road.name, waypoints=road.waypoints)
        car = Car(
            car_id=1,
            route=route,
            mean_speed_kmh=55.0,
            seed=derive_seed(self.seed, "shortseg"),
        )
        agent = self._agent("shortseg-car", car, networks)
        times = list(self._day_times(days, interval_s, 9.0, 18.0))
        self._warm(car, times, networks)
        records: List[TraceRecord] = []
        for t in times:
            for net in networks:
                rec = self._measure(
                    "short-segment", agent, net,
                    MeasurementType.TCP_DOWNLOAD, t,
                    size_bytes=tcp_size_bytes,
                )
                if rec:
                    records.append(rec)
        return records

    # -- Bundles -----------------------------------------------------------------

    def spot_bundle(
        self, days: int = 2, interval_s: float = 10.0
    ) -> dict:
        """Static datasets for the paper's representative WI and NJ spots."""
        wi = madison_spot_locations(count=1)[0]
        nj = new_jersey_spots()[0].anchor
        return {
            "static-wi": self.static_spot(
                wi, "wi", networks=ALL_NETWORKS, days=days, interval_s=interval_s
            ),
            "static-nj": self.static_spot(
                nj, "nj", networks=BC_NETWORKS, days=days, interval_s=interval_s
            ),
        }

    def proximate_bundle(self, days: int = 3) -> dict:
        """Proximate datasets around the same representative spots."""
        wi = madison_spot_locations(count=1)[0]
        nj = new_jersey_spots()[0].anchor
        return {
            "proximate-wi": self.proximate(
                wi, "wi", networks=ALL_NETWORKS, days=days
            ),
            "proximate-nj": self.proximate(
                nj, "nj", networks=BC_NETWORKS, days=days
            ),
        }
