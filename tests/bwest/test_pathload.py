"""Tests for the Pathload-like estimator."""

import numpy as np
import pytest

from repro.bwest.pathload import PathloadEstimator
from repro.network.channel import MeasurementChannel
from repro.radio.technology import NetworkId


@pytest.fixture()
def channel(landscape):
    return MeasurementChannel(landscape, NetworkId.NET_B, np.random.default_rng(3))


@pytest.fixture()
def point(landscape):
    return landscape.study_area.anchor.offset(1300.0, 700.0)


class TestTrendDetection:
    def test_flat_delays_no_trend(self):
        est = PathloadEstimator()
        rng = np.random.default_rng(1)
        delays = list(0.06 + rng.normal(0.0, 0.003, 80))
        assert not est._increasing_trend(delays)

    def test_ramp_detected(self):
        est = PathloadEstimator()
        rng = np.random.default_rng(2)
        delays = list(
            0.06 + 0.0005 * np.arange(80) + rng.normal(0.0, 0.003, 80)
        )
        assert est._increasing_trend(delays)

    def test_heavy_loss_treated_as_congested(self):
        assert PathloadEstimator()._increasing_trend([0.06] * 5)


class TestEstimation:
    def test_estimate_in_link_ballpark(self, channel, point):
        result = PathloadEstimator().estimate(channel, point, 3600.0)
        link = channel.link_at(point, 3600.0)
        assert 0.2 * link.downlink_bps < result.estimate_bps < 1.6 * link.downlink_bps

    def test_range_consistent(self, channel, point):
        result = PathloadEstimator().estimate(channel, point, 7200.0)
        assert result.low_bps <= result.estimate_bps <= result.high_bps
        assert result.iterations >= 1

    def test_tends_to_underestimate(self, landscape, point):
        """Paper section 3.3.1: Pathload under-estimates on cellular."""
        ratios = []
        for i in range(8):
            ch = MeasurementChannel(
                landscape, NetworkId.NET_B, np.random.default_rng(50 + i)
            )
            t = 3600.0 * (1 + i)
            truth = np.mean([
                ch.udp_train(point, t - 30.0 + 6 * k, n_packets=100,
                             inter_packet_delay_s=0.0005).throughput_bps
                for k in range(10)
            ])
            ratios.append(
                PathloadEstimator().estimate(ch, point, t).estimate_bps / truth
            )
        assert np.mean(ratios) < 1.05

    def test_invalid_train_length(self):
        with pytest.raises(ValueError):
            PathloadEstimator(train_length=5)
