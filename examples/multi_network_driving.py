#!/usr/bin/env python3
"""Multi-network driving: multi-sim and MAR with WiScape data (section 4.2).

Drive the 20 km road stretch fetching web pages:

* a multi-SIM phone compares fixed carriers, round-robin switching, and
  WiScape's per-zone best-carrier selection;
* a MAR gateway (three links striped) compares round-robin against the
  WiScape-informed scheduler.

Run:  python examples/multi_network_driving.py
"""

import numpy as np

from repro import NetworkId, build_landscape
from repro.analysis.tables import TextTable
from repro.apps.mar import MarGateway
from repro.apps.multisim import (
    BestZoneSelector,
    FixedSelector,
    MultiSimClient,
    RoundRobinSelector,
    ZonePerformanceMap,
)
from repro.apps.webworkload import surge_page_pool
from repro.datasets.generator import DatasetGenerator
from repro.geo.regions import short_segment_road
from repro.geo.zones import ZoneGrid
from repro.mobility.routes import Route
from repro.mobility.vehicles import Car

ALL = [NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C]
N_PAGES = 1000


def main() -> None:
    print("Building the landscape and the WiScape performance map...")
    landscape = build_landscape(seed=7)
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
    generator = DatasetGenerator(landscape, seed=3)
    survey = generator.short_segment(days=6, interval_s=30.0)
    perf_map = ZonePerformanceMap.from_records(survey, grid)
    print(f"WiScape knows {len(perf_map.zones())} road zones")

    route = Route(name="seg", waypoints=short_segment_road().waypoints)
    pages = surge_page_pool(count=N_PAGES, seed=5)
    start = 10.0 * 3600.0

    # --- multi-SIM phone ---------------------------------------------------
    print(f"\nMulti-SIM phone: fetching {N_PAGES} pages while driving...")
    table = TextTable(["strategy", "total (s)", "mean page (s)"], formats=["", ".1f", ".3f"])
    results = {}
    for name, selector in [
        ("WiScape best-zone", BestZoneSelector(perf_map, ALL)),
        ("fixed NetA", FixedSelector(NetworkId.NET_A)),
        ("fixed NetB", FixedSelector(NetworkId.NET_B)),
        ("fixed NetC", FixedSelector(NetworkId.NET_C)),
        ("round robin", RoundRobinSelector(ALL)),
    ]:
        car = Car(car_id=1, route=route, seed=100)
        client = MultiSimClient(landscape, car, grid, ALL, seed=200)
        fetch = client.fetch(pages, selector, start)
        results[name] = fetch.total_duration_s
        table.add_row(name, fetch.total_duration_s, fetch.mean_page_s)
    print(table.render())
    best_fixed = min(v for k, v in results.items() if k.startswith("fixed"))
    print(
        f"WiScape vs best fixed carrier: "
        f"{1 - results['WiScape best-zone'] / best_fixed:.1%} faster"
    )

    # --- MAR gateway ---------------------------------------------------------
    print(f"\nMAR gateway (3 links): fetching {N_PAGES} pages while driving...")
    table = TextTable(
        ["scheduler", "total (s)", "aggregate Mbps", "requests A/B/C"],
        formats=["", ".1f", ".2f", ""],
    )
    car = Car(car_id=2, route=route, seed=300)
    gateway = MarGateway(landscape, car, grid, ALL, seed=400)
    rr = gateway.run_round_robin(pages, start)
    car = Car(car_id=2, route=route, seed=300)
    gateway = MarGateway(landscape, car, grid, ALL, seed=400)
    ws = gateway.run_wiscape(pages, start, perf_map)
    for result in (rr, ws):
        split = "/".join(
            str(result.per_interface_requests[n]) for n in ALL
        )
        table.add_row(
            result.scheduler, result.total_duration_s,
            result.aggregate_throughput_bps / 1e6, split,
        )
    print(table.render())
    print(
        f"MAR-WiScape vs MAR-RR: "
        f"{1 - ws.total_duration_s / rr.total_duration_s:.1%} faster"
    )


if __name__ == "__main__":
    main()
