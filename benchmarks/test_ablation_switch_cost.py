"""Ablation: multi-sim gains vs carrier-switching cost.

The paper's caveat (section 4.2.2): its application numbers ignore "time
to switch between links".  This ablation prices the switch in: as the
per-switch delay grows, the naive best-zone selector's advantage erodes
(it switches on every small per-zone difference) while a hysteresis
selector — only switch for a >=20% predicted gain — holds on to most of
the benefit with a fraction of the switches.

The per-(scheme, delay) trial is :func:`repro.sweep.scenarios.
switch_cost_trial` (shared with the ``ablation-switch`` sweep preset);
this benchmark runs the full grid at paper scale and asserts the
erosion story.
"""

from repro.analysis.tables import TextTable
from repro.apps.multisim import ZonePerformanceMap
from repro.apps.webworkload import surge_page_pool
from repro.geo.zones import ZoneGrid
from repro.sweep.scenarios import SWITCH_DELAYS_S, switch_cost_trial

N_PAGES = 300
SCHEMES = ("greedy", "hysteresis", "fixed-best")


def _run(landscape, short_segment_trace):
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
    pmap = ZonePerformanceMap.from_records(short_segment_trace, grid)
    pages = surge_page_pool(count=N_PAGES, seed=5)
    start = 10.0 * 3600.0

    # Aggregate over start offsets so the drives cover the whole road
    # (one short fetch only sees a handful of zones).
    starts = [start + k * 500.0 for k in range(6)]

    rows = []
    for delay in SWITCH_DELAYS_S:
        times = {}
        switches = {}
        for scheme in SCHEMES:
            trial = switch_cost_trial(
                landscape, pmap, scheme, delay, pages, starts
            )
            times[scheme] = trial["total_s"]
            switches[scheme] = trial["switches"]
        rows.append((delay, times, switches))
    return rows


def test_ablation_switch_cost(landscape, short_segment_trace, benchmark):
    rows = benchmark.pedantic(
        _run, args=(landscape, short_segment_trace), rounds=1, iterations=1
    )

    table = TextTable(
        ["switch delay (s)", "greedy (s)", "hysteresis (s)", "best fixed (s)",
         "greedy switches", "hysteresis switches"],
        formats=["", ".0f", ".0f", ".0f", "", ""],
    )
    for delay, times, switches in rows:
        table.add_row(
            delay, times["greedy"], times["hysteresis"], times["fixed-best"],
            switches["greedy"], switches["hysteresis"],
        )
    print("\nAblation — multi-sim schedulers vs carrier-switch delay")
    print(table.render())

    # Hysteresis never switches more than greedy.
    for _, times, switches in rows:
        assert switches["hysteresis"] <= switches["greedy"]
    # With free switching the informed selector beats or matches fixed.
    free = rows[0][1]
    assert free["greedy"] <= free["fixed-best"] * 1.05
    # Switch cost genuinely prices in: greedy degrades as delay grows.
    greedy_times = [times["greedy"] for _, times, _ in rows]
    assert greedy_times[-1] > greedy_times[0]
    # The cost-aware selector's *switching overhead* stays smaller: the
    # extra time each scheme pays going from free to costly switching.
    greedy_penalty = greedy_times[-1] - greedy_times[0]
    hyst_times = [times["hysteresis"] for _, times, _ in rows]
    hyst_penalty = hyst_times[-1] - hyst_times[0]
    assert hyst_penalty <= greedy_penalty + 1e-6
