"""Base-station placement.

Carriers deploy towers independently, so each synthetic network gets its
own pseudo-random (but seed-stable) tower layout over the study region.
Tower density and per-tower capacity determine the smooth component of a
network's spatial performance field; differing layouts are what make one
network persistently dominate a given zone (paper Figs 11-13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.geo.coords import GeoPoint
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class BaseStation:
    """A single cell site.

    ``capacity_scale`` multiplies the network's nominal sector rate at
    this site (captures backhaul and sectorization differences between
    sites); ``range_m`` is the distance at which the site's contribution
    to the smooth field has fallen to ~60%.
    """

    site_id: int
    location: GeoPoint
    capacity_scale: float
    range_m: float


def place_base_stations(
    center: GeoPoint,
    area_radius_m: float,
    count: int,
    rng: np.random.Generator,
    mean_range_m: float = 1500.0,
) -> List[BaseStation]:
    """Scatter ``count`` towers over a disc around ``center``.

    Placement is uniform over the disc (sqrt-radius sampling) with mild
    per-site capacity and range variation.  Determinism comes from the
    caller's seeded ``rng``.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    stations: List[BaseStation] = []
    for i in range(count):
        r = area_radius_m * float(np.sqrt(rng.uniform(0.0, 1.0)))
        theta = float(rng.uniform(0.0, 360.0))
        from repro.geo.coords import destination_point

        loc = destination_point(center, theta, r)
        capacity_scale = float(rng.uniform(0.75, 1.25))
        range_m = float(mean_range_m * rng.uniform(0.8, 1.2))
        stations.append(
            BaseStation(
                site_id=i,
                location=loc,
                capacity_scale=capacity_scale,
                range_m=range_m,
            )
        )
    return stations


def place_along_road(
    waypoints: List[GeoPoint],
    spacing_m: float,
    rng: np.random.Generator,
    lateral_m: float = 1200.0,
    mean_range_m: float = 2600.0,
    start_site_id: int = 1000,
) -> List[BaseStation]:
    """Towers strung along a road corridor (for the intercity stretch).

    Real carriers site towers near highways; we drop one every
    ``spacing_m`` of road with random lateral offset.
    """
    from repro.geo.coords import destination_point, initial_bearing_deg, resample_path

    anchors = resample_path(waypoints, spacing_m)
    stations: List[BaseStation] = []
    for i, p in enumerate(anchors):
        nxt = anchors[min(i + 1, len(anchors) - 1)]
        bearing = initial_bearing_deg(p, nxt) if p != nxt else 0.0
        side = 90.0 if rng.uniform() < 0.5 else -90.0
        offset = float(rng.uniform(0.2, 1.0)) * lateral_m
        loc = destination_point(p, bearing + side, offset)
        stations.append(
            BaseStation(
                site_id=start_site_id + i,
                location=loc,
                capacity_scale=float(rng.uniform(0.7, 1.3)),
                range_m=float(mean_range_m * rng.uniform(0.8, 1.2)),
            )
        )
    return stations
