"""Tests for the structured JSONL event log."""

import json

from repro.obs.events import (
    NULL_EVENT_LOG,
    SCHEMA_VERSION,
    EventLog,
    read_events,
)


class TestEmit:
    def test_record_shape_and_sequence(self):
        log = EventLog()
        log.emit("epoch.close", 120.0, zone=[1, 2], n=5)
        log.emit("task.issue", 180.0, client="bus-0")
        records = log.events()
        assert records[0]["v"] == SCHEMA_VERSION
        assert records[0]["seq"] == 0 and records[1]["seq"] == 1
        assert records[0]["t"] == 120.0
        assert records[0]["zone"] == [1, 2]
        assert len(log) == 2

    def test_filter_by_kind_and_counts(self):
        log = EventLog()
        log.emit("a", 1.0)
        log.emit("b", 2.0)
        log.emit("a", 3.0)
        assert len(log.events("a")) == 2
        assert log.counts_by_kind() == {"a": 2, "b": 1}

    def test_capacity_drops_oldest(self):
        log = EventLog(capacity=2)
        for k in range(4):
            log.emit("e", float(k))
        assert len(log) == 2
        assert log.dropped == 2
        assert [e["t"] for e in log.events()] == [2.0, 3.0]


class TestSerialization:
    def test_jsonl_is_canonical(self):
        log = EventLog()
        log.emit("z.kind", 5.0, b=1, a=2)
        line = log.to_jsonl().strip()
        # keys sorted, compact separators: byte-stable representation
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":")
        )
        assert line.index('"a"') < line.index('"b"')

    def test_write_and_read_roundtrip(self, tmp_path):
        log = EventLog()
        log.emit("x", 1.0, v2=True)
        path = tmp_path / "events.jsonl"
        log.write_jsonl(path)
        back = read_events(str(path))
        assert back == log.events()

    def test_read_from_iterable(self):
        lines = ['{"kind":"a","t":1.0}', "", '{"kind":"b","t":2.0}']
        assert [e["kind"] for e in read_events(lines)] == ["a", "b"]


class TestNullEventLog:
    def test_records_nothing(self):
        NULL_EVENT_LOG.emit("x", 1.0, field=3)
        assert len(NULL_EVENT_LOG) == 0
        assert NULL_EVENT_LOG.events() == []
        assert NULL_EVENT_LOG.to_jsonl() == ""
