"""``repro.store``: an embedded, queryable measurement database.

The analysis layers of this repo historically re-read whole JSON/JSONL
artifacts for every question (WAL replay, sweep reduction, ``obs
report``/``diff``).  This package is the query-shaped alternative: a
single-file SQLite database (stdlib only, deterministic content) with
a versioned schema holding raw measurement samples, incremental
per-(zone, epoch, network) rollups maintained transactionally at
insert time, telemetry registry snapshots, alert history, and run
manifests.

Split models/queries/procedures-style:

* :mod:`repro.store.schema`      — DDL + migrations (the models);
* :mod:`repro.store.db`          — connections, pragmas, transactions;
* :mod:`repro.store.writers`     — ingest procedures (WAL, telemetry
  dirs, sweep roots), rollups updated in the same transaction as rows;
* :mod:`repro.store.queries`     — the typed read API (coverage, SLO
  floors, alert history, replay/report reconstruction, comparison);
* :mod:`repro.store.maintenance` — retention + compaction wrappers.

Two byte-identity contracts anchor the design: ``repro serve replay
--store`` rebuilds the exact metrics snapshot a registry replay
produces, and ``obs report --format json`` from a store byte-matches
the JSONL path on the same run.  See DESIGN.md §12.
"""

from repro.store.db import (
    DEFAULT_STORE_FILENAME,
    StoreError,
    connect,
    is_store_path,
    resolve_store_path,
    transaction,
)
from repro.store.maintenance import (
    CompactResult,
    RetentionPolicy,
    apply_retention,
    compact,
    drop_run,
    integrity_check,
    store_stats,
)
from repro.store.queries import (
    CoverageRow,
    RunInfo,
    alert_history,
    compare_runs,
    coverage,
    list_runs,
    logical_dump,
    merged_metrics,
    metrics_snapshot,
    recalibrate_events,
    render_report_from_store,
    replay_snapshot,
    resolve_run,
    slo_attainment,
    summary_from_store,
    summary_model,
)
from repro.store.schema import SCHEMA_VERSION, SchemaError, apply_migrations
from repro.store.writers import (
    ImportResult,
    classify_source,
    create_run,
    import_any,
    import_sweep_root,
    import_telemetry_dir,
    import_wal,
    ingest_reports,
)

__all__ = [
    "CompactResult",
    "CoverageRow",
    "DEFAULT_STORE_FILENAME",
    "ImportResult",
    "RetentionPolicy",
    "RunInfo",
    "SCHEMA_VERSION",
    "SchemaError",
    "StoreError",
    "alert_history",
    "apply_migrations",
    "apply_retention",
    "classify_source",
    "compact",
    "compare_runs",
    "connect",
    "coverage",
    "create_run",
    "drop_run",
    "import_any",
    "import_sweep_root",
    "import_telemetry_dir",
    "import_wal",
    "ingest_reports",
    "integrity_check",
    "is_store_path",
    "list_runs",
    "logical_dump",
    "merged_metrics",
    "metrics_snapshot",
    "recalibrate_events",
    "render_report_from_store",
    "replay_snapshot",
    "resolve_run",
    "resolve_store_path",
    "slo_attainment",
    "store_stats",
    "summary_from_store",
    "summary_model",
    "transaction",
]
