"""Tests for the Telemetry bundle and the ambient global."""

import json

from repro.obs.events import NULL_EVENT_LOG
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.telemetry import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    METRICS_FILENAME,
    NULL_TELEMETRY,
    SPANS_FILENAME,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from repro.obs.manifest import RunManifest


class TestBundle:
    def test_enabled_bundle_has_real_parts(self):
        tel = Telemetry()
        assert tel.enabled
        tel.counter("c").inc()
        tel.gauge("g").set(1.0)
        tel.histogram("h").observe(2.0)
        tel.emit("k", 1.0)
        with tel.span("s"):
            pass
        assert tel.metrics.counter_value("c") == 1.0
        assert len(tel.events) == 1
        assert "s" in tel.tracer.snapshot()

    def test_disabled_bundle_uses_shared_nulls(self):
        tel = Telemetry(enabled=False)
        assert not tel.enabled
        assert tel.metrics is NULL_REGISTRY
        assert tel.events is NULL_EVENT_LOG

    def test_write_artifacts(self, tmp_path):
        tel = Telemetry()
        tel.counter("c").inc()
        tel.emit("k", 2.0, note="x")
        with tel.span("s"):
            pass
        manifest = RunManifest("test", 1)
        paths = tel.write_artifacts(tmp_path, manifest=manifest)
        for name in (METRICS_FILENAME, EVENTS_FILENAME, SPANS_FILENAME,
                     MANIFEST_FILENAME):
            assert (tmp_path / name).exists()
        metrics = json.loads((tmp_path / METRICS_FILENAME).read_text())
        assert metrics["counters"]["c"] == 1.0
        assert set(paths) == {"metrics", "events", "spans", "manifest"}


class TestAmbient:
    def test_default_is_null(self):
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_returns_previous(self):
        tel = Telemetry()
        prev = set_telemetry(tel)
        try:
            assert get_telemetry() is tel
        finally:
            set_telemetry(prev)
        assert get_telemetry() is prev

    def test_use_telemetry_restores_on_exit(self):
        tel = Telemetry()
        with use_telemetry(tel):
            assert get_telemetry() is tel
            with use_telemetry(NULL_TELEMETRY):
                assert get_telemetry() is NULL_TELEMETRY
            assert get_telemetry() is tel
        assert get_telemetry() is NULL_TELEMETRY

    def test_use_telemetry_restores_on_exception(self):
        tel = Telemetry()
        try:
            with use_telemetry(tel):
                raise RuntimeError
        except RuntimeError:
            pass
        assert get_telemetry() is NULL_TELEMETRY
