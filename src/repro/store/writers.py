"""Ingest procedures: everything that puts rows *into* the store.

Three artifact shapes backfill into one schema:

* a serve-side WAL directory (:func:`import_wal`) — every logged report
  is re-validated exactly the way live ingest and WAL replay validate
  it, then inserted together with its incremental per-(zone, epoch,
  network, kind) rollup **in the same transaction**.  That invariant is
  the whole point of the writers module: a SIGKILL at any instant
  leaves rollups consistent with exactly the committed samples.
* a telemetry directory (:func:`import_telemetry_dir`) — the registry
  snapshot, event log, spans, manifest, and snapshot stream land as
  rows, with numeric values stored as JSON literals so a report rebuilt
  from the store is byte-identical to one rebuilt from the files.
* a sweep root (:func:`import_sweep_root`) — the merged root plus every
  cell directory, imported in sorted cell order as one run family, in
  a single merged ingest pass.

:func:`import_any` sniffs which of the three a path is, which is what
``repro store import`` calls.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.clients.protocol import MeasurementReport
from repro.core.config import WiScapeConfig
from repro.core.validation import ReportValidator
from repro.geo.zones import ZoneGrid
from repro.store.db import StoreError, transaction

__all__ = [
    "ImportResult",
    "create_run",
    "import_any",
    "import_sweep_root",
    "import_telemetry_dir",
    "import_wal",
    "ingest_reports",
]

#: Reports per ingest transaction.  Small enough that a crash loses
#: little, large enough that per-commit overhead vanishes in the rate.
DEFAULT_BATCH_SIZE = 5000

_ALERT_KINDS = ("alert.fired", "alert.resolved")


def _canon(obj) -> str:
    """Canonical JSON encoding (sorted keys, compact separators).

    Used for every JSON-typed column so logical equality implies byte
    equality — the sweep determinism test compares store dumps across
    worker counts with plain string comparison.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class ImportResult:
    """What one import produced: run ids, per-table row counts, warnings."""

    label: str
    run_ids: List[int] = field(default_factory=list)
    rows: Dict[str, int] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)
    accepted: int = 0
    rejected: int = 0

    @property
    def rows_ingested(self) -> int:
        """Total rows written across every table (the headline count)."""
        return sum(self.rows.values())

    def _count(self, table: str, n: int = 1) -> None:
        """Accumulate ``n`` rows against ``table``."""
        if n:
            self.rows[table] = self.rows.get(table, 0) + n

    def _merge(self, other: "ImportResult") -> None:
        """Fold a child import (e.g. one sweep cell) into this result."""
        self.run_ids.extend(other.run_ids)
        for table, n in other.rows.items():
            self._count(table, n)
        self.warnings.extend(other.warnings)
        self.accepted += other.accepted
        self.rejected += other.rejected


def default_epoch_s() -> float:
    """The store's default epoch length: the coordinator's (paper ~30 min)."""
    return WiScapeConfig().default_epoch_s


def create_run(
    conn,
    label: str,
    kind: str,
    source: str = "",
    epoch_s: Optional[float] = None,
    manifest: Optional[dict] = None,
    warnings: Iterable[str] = (),
    replace: bool = False,
) -> int:
    """Insert a ``runs`` row and return its id.

    ``label`` is the user-facing unique handle (queries address runs by
    it).  With ``replace`` an existing run of the same label is dropped
    first — cascading away its samples/rollups/metrics — which is what
    re-importing the same WAL into the same store means.
    """
    with transaction(conn):
        if replace:
            conn.execute("DELETE FROM runs WHERE label = ?", (label,))
        else:
            row = conn.execute(
                "SELECT run_id FROM runs WHERE label = ?", (label,)
            ).fetchone()
            if row is not None:
                raise StoreError(
                    f"run {label!r} already exists (use --replace to "
                    "re-import over it)"
                )
        cur = conn.execute(
            "INSERT INTO runs (label, kind, source, epoch_s, manifest_json,"
            " warnings_json) VALUES (?, ?, ?, ?, ?, ?)",
            (
                label,
                kind,
                source,
                float(epoch_s if epoch_s is not None else default_epoch_s()),
                None if manifest is None else _canon(manifest),
                _canon(list(warnings)),
            ),
        )
        return int(cur.lastrowid)


_ROLLUP_UPSERT = """
INSERT INTO rollups (run_id, zone_q, zone_r, epoch_index, network, kind,
                     n_reports, n_samples, sum_value, sum_sq_value,
                     min_value, max_value, first_s, last_s)
VALUES (?, ?, ?, ?, ?, ?, 1, ?, ?, ?, ?, ?, ?, ?)
ON CONFLICT (run_id, zone_q, zone_r, epoch_index, network, kind) DO UPDATE SET
    n_reports    = n_reports + 1,
    n_samples    = n_samples + excluded.n_samples,
    sum_value    = sum_value + excluded.sum_value,
    sum_sq_value = sum_sq_value + excluded.sum_sq_value,
    min_value    = MIN(min_value, excluded.min_value),
    max_value    = MAX(max_value, excluded.max_value),
    first_s      = MIN(first_s, excluded.first_s),
    last_s       = MAX(last_s, excluded.last_s)
"""

_SAMPLE_INSERT = """
INSERT INTO samples (run_id, seq, task_id, client_id, network, kind,
                     zone_q, zone_r, start_s, end_s, lat, lon, speed_ms,
                     value, n_samples, samples_json, extras_json,
                     accepted, reject_reason)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""


def ingest_reports(
    conn,
    run_id: int,
    reports: Iterable[MeasurementReport],
    grid: ZoneGrid,
    validator: Optional[ReportValidator] = None,
    epoch_s: Optional[float] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    result: Optional[ImportResult] = None,
) -> ImportResult:
    """Insert reports with their rollups, ``batch_size`` per transaction.

    Mirrors live coordinator ingest semantics exactly — validation at
    ``report.start_s``, zone from ``grid``, the per-report sample list
    being ``report.samples`` or the scalar value — so the counters
    recoverable from these rows byte-match a metrics-registry replay of
    the same stream.  Rejected reports get a sample row (with reason)
    but no rollup, matching the coordinator never touching zone records
    for them.

    Crash contract: each batch commits atomically; rows and rollups of
    an interrupted batch vanish together on rollback, so reopening the
    store after a kill always finds rollups equal to a recomputation
    over the committed samples.
    """
    result = result or ImportResult(label=str(run_id))
    validator = validator or ReportValidator()
    epoch = float(epoch_s if epoch_s is not None else default_epoch_s())
    row = conn.execute(
        "SELECT COALESCE(MAX(seq), -1) FROM samples WHERE run_id = ?",
        (run_id,),
    ).fetchone()
    seq = int(row[0]) + 1

    pending = 0
    in_tx = False
    for report in reports:
        if not in_tx:
            conn.execute("BEGIN IMMEDIATE")
            in_tx = True
        outcome = validator.validate(report, report.start_s)
        zone_q = zone_r = None
        if outcome.ok:
            zone_q, zone_r = grid.zone_id_for(report.point)
        samples = report.samples if report.samples else [report.value]
        conn.execute(
            _SAMPLE_INSERT,
            (
                run_id, seq, report.task_id, report.client_id,
                report.network.value, report.kind.value, zone_q, zone_r,
                report.start_s, report.end_s, report.point.lat,
                report.point.lon, report.speed_ms, report.value,
                len(samples), _canon(list(samples)),
                _canon(dict(report.extras)),
                1 if outcome.ok else 0, outcome.reason,
            ),
        )
        result._count("samples")
        if outcome.ok:
            result.accepted += 1
            conn.execute(
                _ROLLUP_UPSERT,
                (
                    run_id, zone_q, zone_r,
                    int(report.start_s // epoch),
                    report.network.value, report.kind.value,
                    len(samples), sum(samples),
                    sum(s * s for s in samples),
                    min(samples), max(samples),
                    report.start_s, report.start_s,
                ),
            )
        else:
            result.rejected += 1
        seq += 1
        pending += 1
        if pending >= batch_size:
            conn.execute("COMMIT")
            in_tx = False
            pending = 0
    if in_tx:
        conn.execute("COMMIT")
    rollups = conn.execute(
        "SELECT COUNT(*) FROM rollups WHERE run_id = ?", (run_id,)
    ).fetchone()
    result.rows["rollups"] = int(rollups[0])
    return result


def import_wal(
    conn,
    wal_dir: str,
    label: str,
    replace: bool = False,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ImportResult:
    """Backfill a serve WAL directory into the store as one run.

    The zone grid is rebuilt from ``wal_meta.json`` exactly the way
    :func:`repro.serve.server.build_coordinator` rebuilds it for
    replay, so zone assignment — and therefore every rollup — matches
    what the crashed server had computed.
    """
    from repro.geo.regions import madison_study_area
    from repro.serve.wal import WriteAheadLog, iter_wal_records
    from repro.serve.wire import report_from_wire

    meta = WriteAheadLog.read_meta(wal_dir) or {}
    grid = ZoneGrid(
        madison_study_area().anchor,
        radius_m=float(meta.get("radius_m", 250.0)),
    )
    run_id = create_run(
        conn, label, kind="wal", source=os.path.abspath(wal_dir),
        manifest=meta or None, replace=replace,
    )
    result = ImportResult(label=label, run_ids=[run_id])
    result._count("runs")
    reports = (report_from_wire(rec) for rec in iter_wal_records(wal_dir))
    return ingest_reports(
        conn, run_id, reports, grid,
        batch_size=batch_size, result=result,
    )


def import_telemetry_dir(
    conn,
    out_dir: str,
    label: str,
    kind: Optional[str] = None,
    replace: bool = False,
) -> ImportResult:
    """Backfill one telemetry directory (or sweep root/cell) as one run.

    Loads artifacts through the same tolerant loader ``obs report``
    uses, so the warnings stored with the run are the warnings the
    file-backed report would have shown — part of the byte-identity
    contract.  Everything lands in a single transaction: a run is
    either fully queryable or absent.
    """
    from repro.obs.report import load_artifacts

    artifacts = load_artifacts(out_dir)
    manifest = artifacts.get("manifest")
    run_kind = kind or (manifest or {}).get("run_kind") or "telemetry"
    run_id = create_run(
        conn, label, kind=str(run_kind), source=os.path.abspath(out_dir),
        manifest=manifest, warnings=artifacts.get("warnings") or [],
        replace=replace,
    )
    result = ImportResult(label=label, run_ids=[run_id])
    result._count("runs")

    metrics = artifacts.get("metrics") or {}
    with transaction(conn):
        for metric_kind in ("counter", "gauge"):
            values = metrics.get(metric_kind + "s") or {}
            for name in sorted(values):
                conn.execute(
                    "INSERT INTO metrics (run_id, metric_kind, name,"
                    " value_json) VALUES (?, ?, ?, ?)",
                    (run_id, metric_kind, name, _canon(values[name])),
                )
                result._count("metrics")
        for name in sorted(metrics.get("histograms") or {}):
            conn.execute(
                "INSERT INTO histograms (run_id, name, snap_json)"
                " VALUES (?, ?, ?)",
                (run_id, name, _canon(metrics["histograms"][name])),
            )
            result._count("histograms")
        for key in sorted(artifacts.get("spans") or {}):
            conn.execute(
                "INSERT INTO spans (run_id, key, snap_json)"
                " VALUES (?, ?, ?)",
                (run_id, key, _canon(artifacts["spans"][key])),
            )
            result._count("spans")

        volume: Dict[str, int] = {}
        for seq, event in enumerate(artifacts.get("events") or []):
            event_kind = str(event.get("kind", "?"))
            volume[event_kind] = volume.get(event_kind, 0) + 1
            conn.execute(
                "INSERT INTO events (run_id, seq, kind, t, payload_json)"
                " VALUES (?, ?, ?, ?, ?)",
                (run_id, seq, event_kind, event.get("t"), _canon(event)),
            )
            result._count("events")
            if event_kind in _ALERT_KINDS:
                conn.execute(
                    "INSERT INTO alerts (run_id, seq, t, transition, rule,"
                    " metric, severity, payload_json)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id, seq, event.get("t"),
                        "fired" if event_kind == "alert.fired"
                        else "resolved",
                        str(event.get("rule")), str(event.get("metric")),
                        str(event.get("severity", "?")), _canon(event),
                    ),
                )
                result._count("alerts")
        for event_kind in sorted(volume):
            conn.execute(
                "INSERT INTO event_rollups (run_id, kind, n)"
                " VALUES (?, ?, ?)",
                (run_id, event_kind, volume[event_kind]),
            )
            result._count("event_rollups")

        snapshots = artifacts.get("snapshots") or []
        conn.execute(
            "INSERT INTO snapshot_stats (run_id, count, first_t_json,"
            " last_t_json) VALUES (?, ?, ?, ?)",
            (
                run_id, len(snapshots),
                _canon(snapshots[0].get("t")) if snapshots else None,
                _canon(snapshots[-1].get("t")) if snapshots else None,
            ),
        )
        result._count("snapshot_stats")
    return result


def import_sweep_root(
    conn,
    out_dir: str,
    label: str,
    replace: bool = False,
) -> ImportResult:
    """Backfill a sweep root and all its cells, sorted cell-id order.

    One merged ingest pass: the root's merged artifacts become run
    ``label`` and each ``cells/<id>`` becomes ``label/cells/<id>``.
    Cell order is the reducer's sorted order, so the resulting store
    content is byte-identical for any worker count that produced the
    sweep.
    """
    from repro.sweep.grid import CELLS_DIRNAME

    result = import_telemetry_dir(
        conn, out_dir, label, kind="sweep", replace=replace
    )
    cells_dir = os.path.join(out_dir, CELLS_DIRNAME)
    if os.path.isdir(cells_dir):
        for cell_id in sorted(os.listdir(cells_dir)):
            cell_dir = os.path.join(cells_dir, cell_id)
            if not os.path.isdir(cell_dir):
                continue
            child = import_telemetry_dir(
                conn, cell_dir, f"{label}/cells/{cell_id}",
                kind="sweep-cell", replace=replace,
            )
            result._merge(child)
    return result


def classify_source(path: str) -> str:
    """Which importer handles ``path``: ``wal``, ``sweep``, or ``telemetry``.

    A WAL directory is recognized by its metadata file or segments; a
    sweep root by ``sweep_manifest.json`` without a ``cell.json``;
    anything else with telemetry artifacts imports as a plain run.
    Raises :class:`StoreError` for paths that are none of the three.
    """
    from repro.obs.report import CELL_RECORD_FILENAME, SWEEP_MANIFEST_FILENAME
    from repro.serve.wal import WAL_META_FILENAME, wal_segments

    if not os.path.isdir(path):
        raise StoreError(f"no such artifact directory: {path}")
    if (os.path.isfile(os.path.join(path, WAL_META_FILENAME))
            or wal_segments(path)):
        return "wal"
    if (os.path.isfile(os.path.join(path, SWEEP_MANIFEST_FILENAME))
            and not os.path.isfile(os.path.join(path, CELL_RECORD_FILENAME))):
        return "sweep"
    for name in ("metrics.json", "manifest.json", "events.jsonl",
                 "cell.json"):
        if os.path.exists(os.path.join(path, name)):
            return "telemetry"
    raise StoreError(
        f"{path} is neither a WAL directory, a sweep root, nor a "
        "telemetry directory (nothing importable found)"
    )


def import_any(
    conn,
    path: str,
    label: Optional[str] = None,
    replace: bool = False,
) -> Tuple[str, ImportResult]:
    """Sniff ``path``'s artifact shape and backfill it; return (shape, result).

    The dispatch behind ``repro store import``: WAL directories,
    telemetry directories, and sweep roots all land through the one
    entry point.  ``label`` defaults to the directory's basename.
    """
    shape = classify_source(path)
    if label is None:
        label = os.path.basename(os.path.normpath(path)) or "run"
    if shape == "wal":
        return shape, import_wal(conn, path, label, replace=replace)
    if shape == "sweep":
        return shape, import_sweep_root(conn, path, label, replace=replace)
    return shape, import_telemetry_dir(conn, path, label, replace=replace)
