"""Tests for the text report renderer."""

import json

from repro.obs.manifest import RunManifest
from repro.obs.report import (
    _histogram_quantile,
    build_summary,
    load_artifacts,
    render_diff,
    render_live,
    render_report,
    render_report_from_dir,
    render_watch,
    summary_from_dir,
)
from repro.obs.telemetry import Telemetry


def _sample_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.counter("coordinator.ticks").inc(10)
    tel.gauge("coordinator.streams").set(4)
    h = tel.histogram("coordinator.epoch_samples", buckets=(10.0, 50.0, 100.0))
    for v in (5.0, 30.0, 70.0):
        h.observe(v)
    with tel.span("sim.run"):
        with tel.span("coordinator.tick"):
            pass
    tel.emit("epoch.close", 100.0, zone=[0, 0], network="NetB", metric="ping")
    tel.emit(
        "calibration.recalibrate", 200.0,
        zone=[0, 0], network="NetB", metric="ping",
        epoch_s_before=1800.0, epoch_s=900.0,
        budget_before=100, budget=60,
    )
    return tel


class TestHistogramQuantile:
    def test_boundary_estimate(self):
        snap = {"buckets": [1.0, 2.0, 4.0], "counts": [50, 49, 1, 0],
                "count": 100, "sum": 0.0, "max": 3.0}
        assert _histogram_quantile(snap, 0.5) == 1.0
        assert _histogram_quantile(snap, 0.99) == 2.0

    def test_empty_is_nan(self):
        snap = {"buckets": [1.0], "counts": [0, 0], "count": 0}
        assert _histogram_quantile(snap, 0.5) != _histogram_quantile(snap, 0.5)


class TestRender:
    def test_render_live_contains_all_sections(self):
        tel = _sample_telemetry()
        manifest = RunManifest("monitor", 7, gen_seed=1)
        text = render_live(tel, manifest)
        assert "run manifest" in text
        assert "coordinator.ticks" in text
        assert "histogram percentiles" in text
        assert "sim.run/coordinator.tick" in text
        assert "event volume" in text
        assert "sample-budget convergence" in text
        assert "100->60" in text  # budget trajectory
        assert "1800->900" in text  # epoch trajectory

    def test_empty_report_degrades_gracefully(self):
        text = render_report(
            {"counters": {}, "gauges": {}, "histograms": {}}, [], {}
        )
        assert "no telemetry recorded" in text

    def test_roundtrip_through_files(self, tmp_path):
        tel = _sample_telemetry()
        tel.write_artifacts(tmp_path, manifest=RunManifest("monitor", 7))
        arts = load_artifacts(str(tmp_path))
        assert arts["metrics"]["counters"]["coordinator.ticks"] == 10.0
        assert arts["manifest"]["seed"] == 7
        text = render_report_from_dir(str(tmp_path))
        assert "coordinator.ticks" in text
        assert "epoch.close" in text

    def test_load_artifacts_missing_dir_contents(self, tmp_path):
        arts = load_artifacts(str(tmp_path))
        assert arts["events"] == []
        assert arts["manifest"] is None


def _write_dir(tmp_path, name="run", **overrides):
    """A minimal on-disk telemetry dir, with per-file overrides.

    Pass ``spans=None`` (etc.) to omit a file, or a string to write raw
    bytes instead of the default well-formed JSON.
    """
    out = tmp_path / name
    out.mkdir()
    tel = _sample_telemetry()
    tel.write_artifacts(out, manifest=RunManifest("monitor", 7))
    (out / "snapshots.jsonl").write_text(
        json.dumps({"v": 1, "seq": 0, "t": 60.0,
                    "counters": {"coordinator.ticks": 1.0}, "gauges": {},
                    "histograms": {}})
        + "\n"
    )
    names = {"spans": "spans.json", "metrics": "metrics.json",
             "events": "events.jsonl", "manifest": "manifest.json",
             "snapshots": "snapshots.jsonl"}
    for key, content in overrides.items():
        path = out / names[key]
        if content is None:
            path.unlink()
        else:
            path.write_text(content)
    return out


class TestPartialAndCorruptDirs:
    """Broken telemetry dirs must warn, never traceback (ISSUE sat. d)."""

    def test_missing_spans_warns(self, tmp_path):
        out = _write_dir(tmp_path, spans=None)
        arts = load_artifacts(str(out))
        assert arts["spans"] == {}
        assert any("spans.json" in w for w in arts["warnings"])
        text = render_report_from_dir(str(out))
        assert "spans.json" in text
        assert "coordinator.ticks" in text  # the rest still renders

    def test_corrupt_metrics_warns(self, tmp_path):
        out = _write_dir(tmp_path, metrics="{not json")
        arts = load_artifacts(str(out))
        assert arts["metrics"]["counters"] == {}
        assert any("metrics.json" in w for w in arts["warnings"])
        render_report_from_dir(str(out))  # must not raise

    def test_truncated_events_tail_skipped(self, tmp_path):
        out = _write_dir(tmp_path)
        with open(out / "events.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"kind": "epoch.close", "t":')
        arts = load_artifacts(str(out))
        assert any("events.jsonl" in w for w in arts["warnings"])
        assert all(isinstance(e, dict) for e in arts["events"])

    def test_truncated_snapshots_tail_skipped(self, tmp_path):
        out = _write_dir(tmp_path)
        with open(out / "snapshots.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "seq": 1')
        summary = summary_from_dir(str(out))
        assert summary["snapshots"]["count"] == 1
        assert any("snapshots.jsonl" in w for w in summary["warnings"])

    def test_watch_and_diff_survive_empty_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        render_watch(str(empty))  # must not raise
        render_diff(str(empty), str(empty))  # must not raise


class TestSummaryModel:
    """`obs report --format json` shares the same model as the text path."""

    def test_summary_keys(self, tmp_path):
        out = _write_dir(tmp_path)
        summary = summary_from_dir(str(out))
        for key in ("manifest", "counters", "gauges", "histograms", "spans",
                    "alerts", "slo", "snapshots", "events_dropped",
                    "warnings"):
            assert key in summary
        assert summary["counters"]["coordinator.ticks"] == 10.0
        assert summary["snapshots"]["first_t"] == 60.0
        json.dumps(summary)  # strictly JSON-serializable (NaN -> None)

    def test_alert_state_replayed_from_events(self):
        tel = _sample_telemetry()
        tel.emit("alert.fired", 50.0, rule="r", metric="m", value=1.0)
        tel.emit("alert.resolved", 60.0, rule="r", metric="m", value=0.0)
        tel.emit("alert.fired", 70.0, rule="r", metric="m", value=2.0)
        summary = build_summary({
            "metrics": tel.metrics.snapshot(),
            "events": tel.events.events(),
            "spans": {}, "manifest": None, "snapshots": [],
            "warnings": [],
        })
        assert summary["alerts"]["fired"] == 2
        assert summary["alerts"]["resolved"] == 1
        active = summary["alerts"]["active"]
        assert [(a["rule"], a["metric"], a["since_t"]) for a in active] == [
            ("r", "m", 70.0)
        ]

    def test_render_watch_shows_status_line(self, tmp_path):
        out = _write_dir(tmp_path)
        text = render_watch(str(out))
        assert "snapshots=1" in text
        assert "t=" in text


class TestSweepLayouts:
    """obs report/diff accept sweep roots and cell dirs (no manifest.json)."""

    def _sweep(self, tmp_path, name="sw", workers=1):
        from repro.sweep import SweepRunner, preset_grid

        out = tmp_path / name
        assert SweepRunner(preset_grid("smoke"), str(out),
                           workers=workers).run().success
        return out

    def test_sweep_root_synthesizes_manifest(self, tmp_path):
        out = self._sweep(tmp_path)
        arts = load_artifacts(str(out))
        assert arts["manifest"]["run_kind"] == "sweep"
        assert arts["manifest"]["grid"] == "smoke"
        # Merged roots have metrics but legitimately no spans: no warning.
        assert not any("spans.json" in w for w in arts["warnings"])
        text = render_report_from_dir(str(out))
        assert "kind=sweep" in text and "grid=smoke" in text
        assert "sweep.cells_total" in text

    def test_cell_dir_synthesizes_manifest_from_cell_and_parent(
            self, tmp_path):
        out = self._sweep(tmp_path)
        cell_dir = next(p for p in (out / "cells").iterdir() if p.is_dir())
        arts = load_artifacts(str(cell_dir))
        manifest = arts["manifest"]
        assert manifest["run_kind"] == "sweep-cell"
        assert manifest["scenario"] == "smoke"
        assert manifest["cell_id"] == cell_dir.name
        assert manifest["grid"] == "smoke"  # from ../../sweep_manifest.json
        text = render_report_from_dir(str(cell_dir))
        assert "sweep cell:" in text and cell_dir.name in text

    def test_unmerged_sweep_root_names_the_missing_file(self, tmp_path):
        from repro.sweep import SweepRunner, preset_grid

        out = tmp_path / "unmerged"
        SweepRunner(preset_grid("smoke"), str(out)).run(merge=False)
        arts = load_artifacts(str(out))
        assert any("metrics.json" in w and "sweep merge" in w
                   for w in arts["warnings"])

    def test_plain_dir_warning_names_all_candidate_files(self, tmp_path):
        arts = load_artifacts(str(tmp_path))
        (warning,) = [w for w in arts["warnings"] if "manifest.json" in w]
        assert "sweep_manifest.json" in warning
        assert "cell.json" in warning

    def test_diff_between_two_cells(self, tmp_path):
        out = self._sweep(tmp_path)
        cells = sorted(p for p in (out / "cells").iterdir() if p.is_dir())
        text = render_diff(str(cells[0]), str(cells[-1]))
        assert "smoke.draws" in text  # draws differ between the two cells
