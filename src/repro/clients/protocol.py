"""The coordinator <-> client protocol: tasks and reports.

Kept deliberately small and serializable (plain dataclasses of scalars)
— over a real deployment these would be JSON bodies on a control
channel, and the dataset writers serialize reports in exactly that
spirit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geo.coords import GeoPoint
from repro.radio.technology import NetworkId

ZoneId = Tuple[int, int]


class MeasurementType(str, enum.Enum):
    """The measurement primitives the paper's clients run (Table 1)."""

    TCP_DOWNLOAD = "tcp"
    UDP_TRAIN = "udp"
    PING = "ping"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


@dataclass(frozen=True)
class MeasurementTask:
    """An instruction from the coordinator to one client.

    ``params`` carries type-specific knobs (download size, packet count,
    ping count/interval); unset keys fall back to the agent's defaults.
    """

    task_id: int
    network: NetworkId
    kind: MeasurementType
    zone_id: Optional[ZoneId] = None
    issued_at_s: float = 0.0
    deadline_s: Optional[float] = None
    params: Dict[str, float] = field(default_factory=dict)

    def expired(self, now_s: float) -> bool:
        """True once the task's deadline has passed."""
        return self.deadline_s is not None and now_s > self.deadline_s


@dataclass(frozen=True)
class MeasurementReport:
    """A completed measurement, tagged with position and time.

    ``value`` is the primary metric in SI units (bps for throughput
    tasks, seconds of mean RTT for pings); ``samples`` optionally carries
    per-packet or per-probe values for distribution-level analysis;
    ``extras`` carries secondary metrics (jitter, loss, failures).
    """

    task_id: int
    client_id: str
    network: NetworkId
    kind: MeasurementType
    start_s: float
    end_s: float
    point: GeoPoint
    speed_ms: float
    value: float
    samples: List[float] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def is_failure(self) -> bool:
        """True for reports that carry no usable primary value."""
        return self.value != self.value or (
            self.kind is MeasurementType.PING and self.extras.get("failures", 0) > 0 and not self.samples
        )
