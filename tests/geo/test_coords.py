"""Tests for coordinate primitives and great-circle geometry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.coords import (
    EARTH_RADIUS_M,
    GeoPoint,
    LocalProjection,
    bounding_box,
    destination_point,
    haversine_m,
    initial_bearing_deg,
    interpolate,
    path_length_m,
    resample_path,
)

MADISON = GeoPoint(43.0731, -89.4012)

lat_strategy = st.floats(min_value=-80.0, max_value=80.0)
lon_strategy = st.floats(min_value=-179.0, max_value=179.0)
points = st.builds(GeoPoint, lat_strategy, lon_strategy)


class TestGeoPoint:
    def test_latitude_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-90.5, 0.0)

    def test_longitude_normalized(self):
        assert GeoPoint(0.0, 190.0).lon == pytest.approx(-170.0)
        assert GeoPoint(0.0, -185.0).lon == pytest.approx(175.0)

    def test_offset_east_displaces_longitude_only(self):
        moved = MADISON.offset(1000.0, 0.0)
        assert moved.lat == pytest.approx(MADISON.lat)
        assert moved.lon > MADISON.lon

    def test_offset_distance_roundtrip(self):
        moved = MADISON.offset(300.0, 400.0)
        assert MADISON.distance_to(moved) == pytest.approx(500.0, rel=1e-3)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(MADISON, MADISON) == 0.0

    def test_known_distance_madison_chicago(self):
        chicago = GeoPoint(41.8781, -87.6298)
        # Great-circle Madison-Chicago is ~196 km.
        assert haversine_m(MADISON, chicago) == pytest.approx(196_000, rel=0.02)

    @given(points, points)
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a), abs=1e-6)

    @given(points, points, points)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        ab = haversine_m(a, b)
        bc = haversine_m(b, c)
        ac = haversine_m(a, c)
        assert ac <= ab + bc + 1e-6

    @given(points)
    @settings(max_examples=50)
    def test_nonnegative(self, p):
        assert haversine_m(p, MADISON) >= 0.0


class TestDestinationPoint:
    @given(
        st.floats(min_value=0.0, max_value=359.9),
        st.floats(min_value=1.0, max_value=100_000.0),
    )
    @settings(max_examples=50)
    def test_distance_preserved(self, bearing, distance):
        dest = destination_point(MADISON, bearing, distance)
        assert haversine_m(MADISON, dest) == pytest.approx(distance, rel=1e-6)

    def test_north_increases_latitude(self):
        dest = destination_point(MADISON, 0.0, 5000.0)
        assert dest.lat > MADISON.lat
        assert dest.lon == pytest.approx(MADISON.lon, abs=1e-6)

    def test_bearing_roundtrip(self):
        dest = destination_point(MADISON, 57.0, 20_000.0)
        assert initial_bearing_deg(MADISON, dest) == pytest.approx(57.0, abs=0.1)


class TestInterpolate:
    def test_endpoints(self):
        b = MADISON.offset(1000.0, 1000.0)
        assert interpolate(MADISON, b, 0.0) == MADISON
        assert interpolate(MADISON, b, 1.0) == b

    def test_fraction_clamped(self):
        b = MADISON.offset(1000.0, 0.0)
        assert interpolate(MADISON, b, -0.5) == MADISON
        assert interpolate(MADISON, b, 1.5) == b

    def test_midpoint_is_halfway(self):
        b = MADISON.offset(2000.0, 0.0)
        mid = interpolate(MADISON, b, 0.5)
        assert haversine_m(MADISON, mid) == pytest.approx(1000.0, rel=1e-3)


class TestResamplePath:
    def test_preserves_endpoints(self):
        path = [MADISON, MADISON.offset(5000.0, 0.0)]
        resampled = resample_path(path, 400.0)
        assert resampled[0] == path[0]
        assert resampled[-1] == path[-1]

    def test_spacing_approximately_uniform(self):
        path = [MADISON, MADISON.offset(5000.0, 0.0)]
        resampled = resample_path(path, 500.0)
        gaps = [
            haversine_m(a, b) for a, b in zip(resampled, resampled[1:])
        ]
        # All interior gaps equal the requested spacing.
        for g in gaps[:-1]:
            assert g == pytest.approx(500.0, rel=0.01)

    def test_length_preserved(self):
        path = [MADISON, MADISON.offset(3000.0, 2000.0), MADISON.offset(6000.0, 0.0)]
        resampled = resample_path(path, 100.0)
        assert path_length_m(resampled) == pytest.approx(
            path_length_m(path), rel=0.01
        )

    def test_invalid_spacing_rejected(self):
        with pytest.raises(ValueError):
            resample_path([MADISON, MADISON.offset(10, 0)], 0.0)

    def test_short_path_passthrough(self):
        assert resample_path([MADISON], 100.0) == [MADISON]


class TestLocalProjection:
    @given(
        st.floats(min_value=-20_000, max_value=20_000),
        st.floats(min_value=-20_000, max_value=20_000),
    )
    @settings(max_examples=50)
    def test_roundtrip(self, x, y):
        proj = LocalProjection(MADISON)
        point = proj.to_geo(x, y)
        rx, ry = proj.to_xy(point)
        assert rx == pytest.approx(x, abs=0.01)
        assert ry == pytest.approx(y, abs=0.01)

    def test_planar_distance_matches_haversine_at_city_scale(self):
        proj = LocalProjection(MADISON)
        b = MADISON.offset(4000.0, -3000.0)
        assert proj.distance_xy(MADISON, b) == pytest.approx(
            haversine_m(MADISON, b), rel=0.005
        )


class TestBoundingBox:
    def test_contains_all_points(self):
        pts = [MADISON.offset(dx, dy) for dx in (-500, 0, 500) for dy in (-500, 500)]
        sw, ne = bounding_box(pts)
        for p in pts:
            assert sw.lat <= p.lat <= ne.lat
            assert sw.lon <= p.lon <= ne.lon

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bounding_box([])
