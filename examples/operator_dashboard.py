#!/usr/bin/env python3
"""Operator dashboard: what a carrier sees through WiScape (section 4.1).

Two operator workflows on one screen:

1. **Event detection** — game day at the stadium: latency in the
   surrounding zone rises ~3.7x for three hours; the surge detector
   raises an alert with location, duration, and magnitude.
2. **Variable-performance zones** — zones with persistent daily ping
   failures are flagged as candidates for a drive-by RF survey; their
   TCP throughput variability dwarfs the healthy zones'.

3. **Live coverage watch** — a short coordinator run streamed through
   the live telemetry pipeline: periodic snapshots feed the default
   zone-coverage SLO alert rules, and the alert timeline prints as it
   would in a NOC.

The whole dashboard runs with telemetry enabled and closes with the
shared ``repro.obs`` report renderer — the same summary ``repro obs
report`` prints for a saved telemetry directory.

Run:  python examples/operator_dashboard.py
"""

import numpy as np

from repro import MeasurementChannel, NetworkId, build_landscape, football_game_event
from repro.analysis.tables import TextTable
from repro.apps.operator_tools import detect_latency_surges, variable_zone_report
from repro.datasets.generator import DatasetGenerator
from repro.geo.zones import ZoneGrid
from repro.obs import RunManifest, Telemetry, render_live, use_telemetry
from repro.sim.clock import format_sim_time

GAME_DAY = 5  # first simulated Saturday


def stadium_watch(landscape) -> None:
    print("=" * 64)
    print("1. Game-day latency watch (paper Fig 10)")
    print("=" * 64)
    landscape.add_event(
        football_game_event(landscape.stadium, game_day=GAME_DAY, kickoff_hour=11.0),
        nets=[NetworkId.NET_B, NetworkId.NET_C],
    )
    rng = np.random.default_rng(4)
    for net in (NetworkId.NET_B, NetworkId.NET_C):
        channel = MeasurementChannel(landscape, net, rng)
        series = []
        base = GAME_DAY * 86400.0 + 6 * 3600.0
        for k in range(12 * 30):  # 06:00-18:00, one series per 2 min
            t = base + k * 120.0
            result = channel.ping_series(landscape.stadium, t, count=5, interval_s=1.0)
            if result.rtts_s:
                series.append((t, float(np.mean(result.rtts_s))))
        alerts = detect_latency_surges(series, (0, 0), net)
        baseline = np.median([v for _, v in series]) * 1e3
        print(f"\n{net.value}: baseline latency {baseline:.0f} ms near the stadium")
        if not alerts:
            print("  no sustained surges detected")
        for a in alerts:
            print(
                f"  ALERT: latency {a.magnitude:.1f}x baseline from "
                f"{format_sim_time(a.start_s)} to {format_sim_time(a.end_s)} "
                f"({a.duration_s / 3600.0:.1f} h) — crowd event suspected"
            )


def variability_watch(landscape) -> None:
    print()
    print("=" * 64)
    print("2. Variable-performance zone report (paper Fig 9)")
    print("=" * 64)
    print("Generating two weeks of bus measurements (NetB)...")
    generator = DatasetGenerator(landscape, seed=3)
    trace = generator.standalone(days=6, n_buses=6, n_routes=8, interval_s=90.0)
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
    report = variable_zone_report(
        trace, grid, min_samples=80, min_fail_days=3, network=NetworkId.NET_B
    )
    healthy = np.asarray(report.healthy_rel_stds)
    print(
        f"{len(report.all_zone_rel_std)} zones monitored; "
        f"median rel std {np.median(healthy):.1%}"
    )
    table = TextTable(["zone", "TCP rel std", "action"], formats=["", ".1%", ""])
    for zone in report.failing_zone_ids:
        table.add_row(
            str(zone), report.all_zone_rel_std[zone],
            "schedule drive-by RF survey",
        )
    if report.failing_zone_ids:
        print("\nZones with persistent daily ping failures:")
        print(table.render())
    else:
        print("no failing zones this period")


def live_coverage_watch(landscape) -> None:
    from repro.clients.agent import ClientAgent
    from repro.clients.device import Device, DeviceCategory
    from repro.core.controller import MeasurementCoordinator
    from repro.mobility.routes import city_bus_routes
    from repro.mobility.vehicles import TransitBus
    from repro.obs import (
        AlertEngine,
        SnapshotStreamer,
        Telemetry,
        default_slo_rules,
        use_telemetry,
    )
    from repro.sim.engine import EventEngine

    print()
    print("=" * 64)
    print("3. Live coverage watch (streamed snapshots + SLO alerts)")
    print("=" * 64)
    print("One bus, one hour, a 20-minute radio blackout mid-run...")
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        from repro.core.config import WiScapeConfig

        config = WiScapeConfig(default_epoch_s=300.0)
        coordinator = MeasurementCoordinator(
            grid, config=config, seed=1, telemetry=telemetry
        )
        routes = city_bus_routes(landscape.study_area, count=4)
        start = 6.0 * 3600.0
        bus = TransitBus(bus_id=0, routes=routes, seed=0)
        device = Device(
            "bus-0", DeviceCategory.SBC_PCMCIA, [NetworkId.NET_B], seed=0
        )
        agent = ClientAgent("bus-0", device, bus, landscape, seed=0)
        agent.add_blackout(start + 900.0, start + 2100.0)
        coordinator.register_client(agent)

        engine = EventEngine()
        engine.clock.reset(start)
        until = start + 3600.0
        coordinator.attach(engine, until=until)
        streamer = SnapshotStreamer(telemetry, interval_s=300.0)
        streamer.add_provider(lambda t: engine.publish_loop_stats())
        alerts = AlertEngine(default_slo_rules(), telemetry)
        streamer.subscribe(alerts.evaluate)
        streamer.attach(engine, until=until)
        engine.run(until=until)
        streamer.close()

    print(f"{streamer.snapshots_taken} snapshots streamed")
    if not alerts.transitions:
        print("  no alert transitions")
    for t, transition, rule, metric, value in alerts.transitions:
        print(
            f"  {format_sim_time(t)} {transition.upper():8s} {rule} "
            f"on {metric} (value={value:g})"
        )


def main() -> None:
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        print("Building the landscape...")
        landscape = build_landscape(seed=7, include_road=False, include_nj=False)
        stadium_watch(landscape)
        variability_watch(landscape)
        landscape.publish_cache_metrics(telemetry)

    live_coverage_watch(landscape)

    print()
    manifest = RunManifest(run_kind="operator-dashboard", seed=7, gen_seed=3)
    print(render_live(telemetry, manifest, title="dashboard telemetry"))


if __name__ == "__main__":
    main()
