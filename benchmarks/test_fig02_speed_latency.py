"""Figure 2: latency vs vehicle speed.

(a) latency is ~120 ms across 0-120 km/h with no visible trend;
(b) the CDF of per-zone speed-latency correlation coefficients shows
95% of zones below 0.16 — the justification for collecting ground truth
from moving buses.
"""

import numpy as np

from repro.analysis.figures import speed_latency_analysis
from repro.analysis.tables import TextTable
from repro.geo.zones import ZoneGrid
from repro.radio.technology import NetworkId


def test_fig02_speed_vs_latency(wirover_trace, landscape, benchmark):
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)

    analysis = benchmark.pedantic(
        speed_latency_analysis,
        args=(wirover_trace, grid),
        kwargs={"min_samples_per_zone": 20},
        rounds=1, iterations=1,
    )

    speeds = np.array([s for s, _ in analysis.scatter])
    lats = np.array([l for _, l in analysis.scatter])
    corrs = np.array(analysis.correlations())

    # Fig 2a: mean latency per speed band.
    bands = TextTable(["speed band (km/h)", "n", "mean latency (ms)"], formats=["", "", ".1f"])
    for lo in range(0, 120, 20):
        mask = (speeds >= lo) & (speeds < lo + 20)
        if mask.sum() >= 20:
            bands.add_row(f"{lo}-{lo+20}", int(mask.sum()), float(lats[mask].mean()))
    print("\nFig 2a — latency vs vehicle speed (UDP pings, NetB+NetC)")
    print(bands.render())

    # Fig 2b: correlation CDF summary.
    frac_016 = analysis.fraction_below(0.16)
    summary = TextTable(["statistic", "value"], formats=["", ".3f"])
    summary.add_row("zones with correlation", float(len(corrs)))
    summary.add_row("median |corr|", float(np.median(np.abs(corrs))))
    summary.add_row("fraction |corr| < 0.16", frac_016)
    print("Fig 2b — per-zone speed-latency correlation CDF")
    print(summary.render())

    # Shape: latencies ~100-200 ms at every speed; no speed trend
    # (fast band within 15% of slow band); >=90% of zones below |0.16|
    # correlation (paper: 95%).
    assert len(corrs) >= 30
    slow = lats[speeds < 30.0].mean()
    fast = lats[speeds > 60.0].mean()
    assert abs(fast - slow) / slow < 0.15
    assert frac_016 >= 0.90
