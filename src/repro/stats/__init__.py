"""Statistical machinery behind WiScape's design choices.

* :mod:`repro.stats.allan` — Allan deviation, used to pick each zone's
  epoch duration (paper section 3.2.2, Fig 6);
* :mod:`repro.stats.nkld` — symmetric Normalized Kullback-Leibler
  Divergence, used to decide how many client samples make a distribution
  "similar enough" to the long-term truth (section 3.3, Fig 7);
* :mod:`repro.stats.distributions` — empirical CDFs and quantiles for
  all of the paper's CDF figures;
* :mod:`repro.stats.correlation` — Pearson correlation (speed-vs-latency
  analysis, Fig 2);
* :mod:`repro.stats.sampling` — minimum-sample-count searches (Table 5).
"""

from repro.stats.allan import (
    allan_deviation,
    allan_deviation_profile,
    optimal_averaging_time,
)
from repro.stats.correlation import pearson_correlation
from repro.stats.distributions import EmpiricalCDF, cdf_points
from repro.stats.nkld import (
    empirical_pmf,
    entropy,
    kl_divergence,
    nkld,
    nkld_from_samples,
)
from repro.stats.sampling import (
    estimation_error,
    min_samples_for_accuracy,
)

__all__ = [
    "allan_deviation",
    "allan_deviation_profile",
    "optimal_averaging_time",
    "pearson_correlation",
    "EmpiricalCDF",
    "cdf_points",
    "empirical_pmf",
    "entropy",
    "kl_divergence",
    "nkld",
    "nkld_from_samples",
    "estimation_error",
    "min_samples_for_accuracy",
]
