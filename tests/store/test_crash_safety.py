"""Crash-safety: SIGKILL mid-ingest must leave rollups == committed rows.

A writer child ingests an endless report stream in small batches; the
parent watches the row count through a concurrent WAL-mode reader and
SIGKILLs the child mid-stream.  Reopening the store must find (a) only
whole batches committed and (b) rollups exactly equal to a pure-Python
refold of the committed samples — the same-transaction invariant the
writers module exists to provide.
"""

import os
import signal
import subprocess
import sys
import time

from repro.store import connect
from repro.store.db import StoreError

from tests.store.helpers import fold_rollups, stored_rollups

BATCH_SIZE = 50
MIN_ROWS_BEFORE_KILL = 200

_CHILD = """
import sys
from repro.store import connect, create_run, ingest_reports
from tests.store.helpers import default_grid, make_report

conn = connect(sys.argv[1])
run_id = create_run(conn, "crash", "wal")

def endless():
    i = 0
    while True:
        yield make_report(i)
        i += 1

ingest_reports(conn, run_id, endless(), default_grid(),
               batch_size={batch_size})
""".format(batch_size=BATCH_SIZE)


def _poll_rows(path, deadline_s=60.0):
    """Row count via a concurrent reader, once it crosses the kill floor."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            conn = connect(path, create=False)
        except StoreError:
            time.sleep(0.05)
            continue
        try:
            row = conn.execute("SELECT COUNT(*) FROM samples").fetchone()
        except Exception:
            row = (0,)
        finally:
            conn.close()
        if row[0] >= MIN_ROWS_BEFORE_KILL:
            return row[0]
        time.sleep(0.05)
    raise AssertionError(
        f"writer never reached {MIN_ROWS_BEFORE_KILL} committed rows"
    )


def test_sigkill_mid_ingest_leaves_consistent_rollups(tmp_path):
    store_path = str(tmp_path / "store.sqlite")
    repo_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo_root, "src"), repo_root]
        + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, store_path],
        env=env, cwd=repo_root,
    )
    try:
        _poll_rows(store_path)
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    conn = connect(store_path, create=False)
    try:
        run_id, = conn.execute(
            "SELECT run_id FROM runs WHERE label = 'crash'").fetchone()
        committed, = conn.execute(
            "SELECT COUNT(*) FROM samples WHERE run_id = ?", (run_id,)
        ).fetchone()
        # only whole batches survive: the interrupted one rolled back
        assert committed >= MIN_ROWS_BEFORE_KILL
        assert committed % BATCH_SIZE == 0
        # rollups were written in the same transactions as their rows,
        # so they must equal a from-scratch refold — float for float
        assert stored_rollups(conn, run_id) == fold_rollups(conn, run_id)
        n_reports, = conn.execute(
            "SELECT COALESCE(SUM(n_reports), 0) FROM rollups"
            " WHERE run_id = ?", (run_id,)).fetchone()
        accepted, = conn.execute(
            "SELECT COUNT(*) FROM samples WHERE run_id = ? AND accepted = 1",
            (run_id,)).fetchone()
        assert n_reports == accepted == committed  # every report is clean
    finally:
        conn.close()
