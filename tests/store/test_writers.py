"""Ingest-path tests (repro.store.writers): rollup math, idempotence."""

import json

import pytest

from repro.store import (
    StoreError,
    classify_source,
    connect,
    create_run,
    import_any,
    import_telemetry_dir,
    import_wal,
    ingest_reports,
    list_runs,
)

from tests.store.helpers import (
    EPOCH_S,
    default_grid,
    fold_rollups,
    make_report,
    stored_rollups,
    write_telemetry_dir,
    write_wal,
)


@pytest.fixture
def store(tmp_path):
    conn = connect(str(tmp_path / "store.sqlite"))
    yield conn
    conn.close()


class TestIngestReports:
    def test_rollups_match_pure_python_fold(self, store):
        reports = [make_report(i) for i in range(60)]
        reports += [make_report(i, samples=[0.02, 0.021, 0.022])
                    for i in range(60, 75, 3)]
        run_id = create_run(store, "r", "wal")
        result = ingest_reports(store, run_id, reports, default_grid())
        assert result.accepted == len(reports)
        assert stored_rollups(store, run_id) == fold_rollups(store, run_id)

    def test_rejected_reports_get_row_but_no_rollup(self, store):
        good = make_report(0)
        bad_speed = make_report(1, speed_ms=500.0)
        bad_duration = make_report(2, end_offset_s=-1.0)
        run_id = create_run(store, "r", "wal")
        result = ingest_reports(
            store, run_id, [good, bad_speed, bad_duration], default_grid()
        )
        assert (result.accepted, result.rejected) == (1, 2)
        reasons = dict(store.execute(
            "SELECT reject_reason, COUNT(*) FROM samples"
            " WHERE run_id = ? AND accepted = 0 GROUP BY reject_reason",
            (run_id,),
        ).fetchall())
        assert reasons == {"implausible-speed": 1, "negative-duration": 1}
        n_rollups = store.execute(
            "SELECT COUNT(*) FROM rollups WHERE run_id = ?", (run_id,)
        ).fetchone()[0]
        assert n_rollups == 1  # only the accepted report rolled up

    def test_seq_continues_across_ingest_calls(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id,
                       [make_report(i) for i in range(5)], default_grid())
        ingest_reports(store, run_id,
                       [make_report(i) for i in range(5, 8)], default_grid())
        seqs = [row[0] for row in store.execute(
            "SELECT seq FROM samples WHERE run_id = ? ORDER BY seq",
            (run_id,))]
        assert seqs == list(range(8))
        # incremental rollups across both calls still equal one fold
        assert stored_rollups(store, run_id) == fold_rollups(store, run_id)

    def test_scalar_value_becomes_single_sample(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id, [make_report(0)], default_grid())
        n_samples, samples_json = store.execute(
            "SELECT n_samples, samples_json FROM samples WHERE run_id = ?",
            (run_id,)).fetchone()
        assert n_samples == 1
        assert json.loads(samples_json) == [make_report(0).value]

    def test_small_batches_commit_everything(self, store):
        reports = [make_report(i) for i in range(23)]
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id, reports, default_grid(), batch_size=4)
        n = store.execute(
            "SELECT COUNT(*) FROM samples WHERE run_id = ?", (run_id,)
        ).fetchone()[0]
        assert n == 23
        assert stored_rollups(store, run_id) == fold_rollups(store, run_id)

    def test_epoch_index_uses_run_epoch(self, store):
        run_id = create_run(store, "r", "wal", epoch_s=600.0)
        report = make_report(0, start_s=1250.0)
        ingest_reports(store, run_id, [report], default_grid(),
                       epoch_s=600.0)
        epoch_index = store.execute(
            "SELECT epoch_index FROM rollups WHERE run_id = ?", (run_id,)
        ).fetchone()[0]
        assert epoch_index == int(1250.0 // 600.0) == 2
        assert stored_rollups(store, run_id) == \
            fold_rollups(store, run_id, epoch_s=600.0)


class TestCreateRun:
    def test_duplicate_label_refused(self, store):
        create_run(store, "r", "wal")
        with pytest.raises(StoreError, match="already exists"):
            create_run(store, "r", "wal")

    def test_replace_drops_old_run_and_children(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id,
                       [make_report(i) for i in range(4)], default_grid())
        create_run(store, "r", "wal", replace=True)
        # the cascade removed the old run's rows table-wide (sqlite may
        # reuse the rowid, so count globally rather than per run_id)
        for table in ("samples", "rollups"):
            n = store.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            assert n == 0, table
        assert [r.label for r in list_runs(store)] == ["r"]


class TestImportWal:
    def test_wal_roundtrip_counts(self, store, tmp_path):
        reports = [make_report(i) for i in range(12)]
        reports.append(make_report(99, speed_ms=500.0))
        wal_dir = write_wal(tmp_path / "wal", reports)
        result = import_wal(store, wal_dir, "w")
        assert (result.accepted, result.rejected) == (12, 1)
        assert result.rows["samples"] == 13
        assert result.rows_ingested > 13  # runs + samples + rollups
        run = list_runs(store)[0]
        assert run.kind == "wal"
        assert run.manifest["radius_m"] == 250.0

    def test_wal_grid_radius_honored(self, store, tmp_path):
        reports = [make_report(i) for i in range(6)]
        wal_dir = write_wal(tmp_path / "wal", reports, radius_m=500.0)
        import_wal(store, wal_dir, "w")
        run_id = list_runs(store)[0].run_id
        from repro.geo.regions import madison_study_area
        from repro.geo.zones import ZoneGrid

        grid = ZoneGrid(madison_study_area().anchor, radius_m=500.0)
        want = {grid.zone_id_for(r.point) for r in reports}
        got = {tuple(row) for row in store.execute(
            "SELECT DISTINCT zone_q, zone_r FROM samples"
            " WHERE run_id = ? AND accepted = 1", (run_id,))}
        assert got == want


class TestImportTelemetry:
    def test_rows_by_table(self, store, tmp_path):
        out = write_telemetry_dir(tmp_path / "tel")
        result = import_telemetry_dir(store, out, "t")
        assert result.rows["metrics"] == 4      # 2 counters + 2 gauges
        assert result.rows["histograms"] == 1
        assert result.rows["spans"] == 2
        assert result.rows["events"] == 4
        assert result.rows["alerts"] == 2
        assert result.rows["event_rollups"] == 4
        run = list_runs(store)[0]
        assert run.kind == "monitor"  # from the manifest's run_kind

    def test_alert_rows_mirror_events(self, store, tmp_path):
        out = write_telemetry_dir(tmp_path / "tel")
        import_telemetry_dir(store, out, "t")
        run_id = list_runs(store)[0].run_id
        rows = store.execute(
            "SELECT transition, rule FROM alerts WHERE run_id = ?"
            " ORDER BY seq", (run_id,)).fetchall()
        assert rows == [("fired", "slo.under_coverage"),
                        ("resolved", "slo.under_coverage")]


class TestClassifyAndImportAny:
    def test_classify_each_shape(self, store, tmp_path):
        wal_dir = write_wal(tmp_path / "wal", [make_report(0)])
        tel_dir = write_telemetry_dir(tmp_path / "tel")
        assert classify_source(wal_dir) == "wal"
        assert classify_source(tel_dir) == "telemetry"
        with pytest.raises(StoreError, match="no such artifact"):
            classify_source(str(tmp_path / "absent"))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(StoreError, match="nothing importable"):
            classify_source(str(empty))

    def test_import_any_defaults_label_to_basename(self, store, tmp_path):
        wal_dir = write_wal(tmp_path / "mywal", [make_report(0)])
        shape, result = import_any(store, wal_dir)
        assert shape == "wal"
        assert result.label == "mywal"
        assert [r.label for r in list_runs(store)] == ["mywal"]
