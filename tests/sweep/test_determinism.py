"""The sweep's core guarantee: worker count cannot change results.

Every deterministic artifact — per-cell ``cell.json``/``metrics.json``/
``events.jsonl`` and the reduced ``summary.jsonl``/``metrics.json`` —
must be byte-identical whether the grid ran inline, on 2 workers, or on
4, because all randomness is spawn-keyed off content-derived cell ids.
"""

import os

import pytest

from repro.sweep import CELLS_DIRNAME, SweepRunner, load_summary, preset_grid

#: The artifacts the determinism guarantee covers (spans.json and
#: sweep_status.json hold host timings and are deliberately excluded).
DETERMINISTIC_SWEEP_FILES = ("summary.jsonl", "metrics.json")
DETERMINISTIC_CELL_FILES = ("cell.json", "metrics.json", "events.jsonl")


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """The smoke preset executed at 1, 2, and 4 workers."""
    base = tmp_path_factory.mktemp("sweep-determinism")
    dirs = {}
    for workers in (1, 2, 4):
        out = str(base / f"w{workers}")
        result = SweepRunner(preset_grid("smoke"), out,
                             workers=workers).run()
        assert result.success
        dirs[workers] = out
    return dirs


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("filename", DETERMINISTIC_SWEEP_FILES)
    def test_merged_artifacts_byte_identical(self, runs, workers, filename):
        assert _read(os.path.join(runs[1], filename)) == \
            _read(os.path.join(runs[workers], filename))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_cell_artifacts_byte_identical(self, runs, workers):
        serial_cells = os.path.join(runs[1], CELLS_DIRNAME)
        for cell_id in sorted(os.listdir(serial_cells)):
            for filename in DETERMINISTIC_CELL_FILES:
                a = os.path.join(serial_cells, cell_id, filename)
                b = os.path.join(runs[workers], CELLS_DIRNAME, cell_id,
                                 filename)
                assert _read(a) == _read(b), f"{cell_id}/{filename}"

    def test_rerun_reproduces_bytes(self, runs, tmp_path):
        out = str(tmp_path / "again")
        assert SweepRunner(preset_grid("smoke"), out, workers=2).run().success
        for filename in DETERMINISTIC_SWEEP_FILES:
            assert _read(os.path.join(out, filename)) == \
                _read(os.path.join(runs[1], filename))

    def test_metrics_have_no_wallclock(self, runs):
        """Spot-check: nothing time-of-day-ish leaks into summary lines."""
        for record in load_summary(runs[1]):
            assert "wall" not in str(sorted(record)).lower()
            assert "duration" not in str(sorted(record)).lower()
