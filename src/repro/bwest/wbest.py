"""A simplified WBest estimator.

WBest (Li et al., LCN 2008) is a two-stage wireless bandwidth tool:

1. a packet-pair burst estimates effective capacity C from the median
   pair dispersion;
2. a packet train at rate C estimates available bandwidth as
   A = C * (2 - D_train / D_pair): if the train's average dispersion
   exceeds the pair dispersion, cross traffic is consuming the link.

On cellular links the dispersion of a back-to-back pair is not the
clean transmission time WBest assumes: scheduler jitter adds a
heavy-ish positive tail (negative jitter is bounded by the service time,
positive is not), inflating the median dispersion and deflating C; the
train stage then subtracts the inflation *again* through the dispersion
ratio.  The compounded bias under-estimates by as much as ~70%, the
paper's observation (and [22]'s) for EV-DO links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.geo.coords import GeoPoint
from repro.network.channel import MeasurementChannel


@dataclass(frozen=True)
class WBestResult:
    """Outcome of a WBest run."""

    capacity_bps: float
    available_bps: float
    pair_dispersion_s: float
    train_dispersion_s: float


class WBestEstimator:
    """Packet-pair capacity + packet-train available bandwidth."""

    def __init__(
        self,
        packet_size_bytes: int = 1200,
        n_pairs: int = 40,
        train_length: int = 30,
    ):
        if n_pairs < 3 or train_length < 3:
            raise ValueError("n_pairs and train_length must be >= 3")
        self.packet_size_bytes = packet_size_bytes
        self.n_pairs = n_pairs
        self.train_length = train_length

    def _pair_dispersions(
        self, channel: MeasurementChannel, point: GeoPoint, t: float
    ) -> List[float]:
        dispersions: List[float] = []
        now = t
        for _ in range(self.n_pairs):
            train = channel.udp_train(
                point,
                now,
                n_packets=2,
                packet_size_bytes=self.packet_size_bytes,
                inter_packet_delay_s=0.0,
            )
            delivered = [r for r in train.records if not r.lost]
            if len(delivered) == 2:
                gap = delivered[1].recv_time_s - delivered[0].recv_time_s  # type: ignore[operator]
                if gap > 0:
                    dispersions.append(gap)
            now += 0.05
        return dispersions

    def _train_dispersion(
        self,
        channel: MeasurementChannel,
        point: GeoPoint,
        t: float,
        rate_bps: float,
    ) -> float:
        ipd = self.packet_size_bytes * 8.0 / max(rate_bps, 1e3)
        train = channel.udp_train(
            point,
            t,
            n_packets=self.train_length,
            packet_size_bytes=self.packet_size_bytes,
            inter_packet_delay_s=ipd,
        )
        delivered = [r for r in train.records if not r.lost]
        if len(delivered) < 2:
            return float("inf")
        gaps = [
            b.recv_time_s - a.recv_time_s  # type: ignore[operator]
            for a, b in zip(delivered, delivered[1:])
            if b.recv_time_s > a.recv_time_s  # type: ignore[operator]
        ]
        if not gaps:
            return float("inf")
        return float(np.mean(gaps))

    def estimate(
        self, channel: MeasurementChannel, point: GeoPoint, t: float
    ) -> WBestResult:
        """Run both WBest stages at (point, t)."""
        dispersions = self._pair_dispersions(channel, point, t)
        if not dispersions:
            return WBestResult(0.0, 0.0, float("inf"), float("inf"))
        pair_disp = float(np.median(dispersions))
        capacity = self.packet_size_bytes * 8.0 / pair_disp

        train_disp = self._train_dispersion(
            channel, point, t + 2.0, rate_bps=capacity
        )
        if train_disp == float("inf"):
            return WBestResult(capacity, 0.0, pair_disp, train_disp)
        ratio = train_disp / pair_disp
        available = max(0.0, capacity * (2.0 - ratio))
        return WBestResult(
            capacity_bps=capacity,
            available_bps=min(available, capacity),
            pair_dispersion_s=pair_disp,
            train_dispersion_s=train_disp,
        )
