"""Aligned text tables for bench/example output."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class TextTable:
    """A minimal fixed-width table renderer.

    Cells are stringified with an optional per-column format; columns
    are padded to their widest cell.  Good enough to echo the paper's
    tables on a terminal.
    """

    def __init__(self, headers: Sequence[str], formats: Optional[Sequence[str]] = None):
        if not headers:
            raise ValueError("need at least one column")
        if formats is not None and len(formats) != len(headers):
            raise ValueError("formats must match headers")
        self.headers = list(headers)
        self.formats = list(formats) if formats else [""] * len(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; numeric cells use the column's format spec."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        rendered = []
        for cell, fmt in zip(cells, self.formats):
            if fmt and isinstance(cell, (int, float)):
                rendered.append(format(cell, fmt))
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def render(self, indent: str = "") -> str:
        """The aligned plain-text table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            indent
            + "  ".join(h.ljust(w) for h, w in zip(self.headers, widths)),
            indent + "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append(
                indent
                + "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
