"""Persistent network dominance (paper section 4.2.1).

"When the lower 5 percentile of the best network's metric is better
than the upper 95 percentile of other networks in a given zone, we say
the zone is persistently dominated by the best network."  Persistence is
what makes infrequent WiScape sampling sufficient for the multi-network
applications: a dominant carrier today is still dominant tomorrow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.clients.protocol import MeasurementType
from repro.datasets.records import TraceRecord
from repro.geo.zones import ZoneGrid, ZoneId
from repro.radio.technology import NetworkId
from repro.stats.distributions import EmpiricalCDF


def dominant_network(
    samples_by_network: Dict[NetworkId, Sequence[float]],
    higher_is_better: bool = True,
    low_pct: float = 5.0,
    high_pct: float = 95.0,
    min_samples: int = 10,
) -> Optional[NetworkId]:
    """The persistently dominant carrier for one zone, if any.

    For "higher is better" metrics (throughput), a carrier dominates
    when its ``low_pct`` percentile exceeds every rival's ``high_pct``
    percentile; for "lower is better" (latency), when its ``high_pct``
    percentile is below every rival's ``low_pct``.  Returns None when no
    carrier dominates or fewer than two carriers have enough samples.
    """
    cdfs = {
        net: EmpiricalCDF(vals)
        for net, vals in samples_by_network.items()
        if len(vals) >= min_samples
    }
    if len(cdfs) < 2:
        return None
    for net, cdf in cdfs.items():
        others = [c for n, c in cdfs.items() if n != net]
        if higher_is_better:
            pessimistic = cdf.percentile(low_pct)
            if all(pessimistic > o.percentile(high_pct) for o in others):
                return net
        else:
            pessimistic = cdf.percentile(high_pct)
            if all(pessimistic < o.percentile(low_pct) for o in others):
                return net
    return None


@dataclass
class DominanceResult:
    """Zone-by-zone dominance over a region."""

    kind: MeasurementType
    higher_is_better: bool
    by_zone: Dict[ZoneId, Optional[NetworkId]] = field(default_factory=dict)

    @property
    def n_zones(self) -> int:
        return len(self.by_zone)

    @property
    def n_dominated(self) -> int:
        return sum(1 for v in self.by_zone.values() if v is not None)

    @property
    def dominance_ratio(self) -> float:
        """Fraction of zones with a persistently dominant carrier."""
        return self.n_dominated / self.n_zones if self.by_zone else 0.0

    def share(self, network: NetworkId) -> float:
        """Fraction of zones dominated by ``network``."""
        if not self.by_zone:
            return 0.0
        return (
            sum(1 for v in self.by_zone.values() if v == network)
            / self.n_zones
        )

    def counts(self) -> Dict[Optional[NetworkId], int]:
        """Zone counts per dominant carrier (None = no dominance)."""
        out: Dict[Optional[NetworkId], int] = {}
        for v in self.by_zone.values():
            out[v] = out.get(v, 0) + 1
        return out


def zone_dominance(
    records: Iterable[TraceRecord],
    grid: ZoneGrid,
    kind: MeasurementType,
    higher_is_better: bool = True,
    min_samples: int = 10,
    min_networks: int = 2,
) -> DominanceResult:
    """Dominance analysis over a trace (Figs 11-12).

    Only zones where at least ``min_networks`` carriers each have
    ``min_samples`` valid records are judged.
    """
    by_zone: Dict[ZoneId, Dict[NetworkId, List[float]]] = {}
    for rec in records:
        if rec.kind is not kind or math.isnan(rec.value):
            continue
        zone = grid.zone_id_for(rec.point)
        by_zone.setdefault(zone, {}).setdefault(rec.network, []).append(rec.value)

    result = DominanceResult(kind=kind, higher_is_better=higher_is_better)
    for zone, per_net in by_zone.items():
        qualified = {
            net: vals for net, vals in per_net.items() if len(vals) >= min_samples
        }
        if len(qualified) < min_networks:
            continue
        result.by_zone[zone] = dominant_network(
            qualified,
            higher_is_better=higher_is_better,
            min_samples=min_samples,
        )
    return result
