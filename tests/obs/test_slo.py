"""Tests for zone-coverage SLO tracking (demand scoping, streaks, gauges)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloPolicy, SloTracker, default_slo_rules


KEY = ((3, 4), "NetB", "latency")


class TestPolicy:
    def test_defaults_match_paper_floor(self):
        policy = SloPolicy()
        assert policy.min_epoch_samples == 10
        assert policy.under_epochs == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(min_epoch_samples=0)
        with pytest.raises(ValueError):
            SloPolicy(under_epochs=0)
        with pytest.raises(ValueError):
            SloPolicy(staleness_limit_s=0.0)


class TestDemandScoping:
    def test_undemanded_close_never_counts_as_under(self):
        tracker = SloTracker()
        tracker.note_epoch_close(KEY, 0, 100.0)
        assert tracker.stream(KEY).consecutive_under == 0

    def test_demanded_under_covered_epochs_accumulate(self):
        tracker = SloTracker()
        for i in range(3):
            tracker.note_demand(KEY, 100.0 * i)
            tracker.note_epoch_close(KEY, 2, 100.0 * i + 50.0)
        s = tracker.stream(KEY)
        assert s.consecutive_under == 3
        assert s.epochs_under == 3
        assert s.epochs_closed == 3

    def test_covered_epoch_resets_streak(self):
        tracker = SloTracker()
        for _ in range(2):
            tracker.note_demand(KEY, 0.0)
            tracker.note_epoch_close(KEY, 0, 1.0)
        tracker.note_demand(KEY, 2.0)
        tracker.note_epoch_close(KEY, 12, 3.0)
        assert tracker.stream(KEY).consecutive_under == 0

    def test_clients_leaving_resets_streak(self):
        """An undemanded close means the zone is unmeasurable, not failing."""
        tracker = SloTracker()
        tracker.note_demand(KEY, 0.0)
        tracker.note_epoch_close(KEY, 0, 1.0)
        tracker.note_epoch_close(KEY, 0, 2.0)  # nobody present
        assert tracker.stream(KEY).consecutive_under == 0

    def test_demand_flag_cleared_each_close(self):
        tracker = SloTracker()
        tracker.note_demand(KEY, 0.0)
        tracker.note_epoch_close(KEY, 0, 1.0)
        assert tracker.stream(KEY).demanded is False

    def test_multi_epoch_close_counts_each_window(self):
        tracker = SloTracker()
        tracker.note_demand(KEY, 0.0)
        tracker.note_epoch_close(KEY, 0, 1.0, n_epochs=3)
        assert tracker.stream(KEY).consecutive_under == 3


class TestStaleness:
    def test_staleness_anchors_to_last_sample(self):
        tracker = SloTracker()
        tracker.note_demand(KEY, 10.0)
        tracker.note_samples(KEY, 4, 20.0)
        assert tracker.stream(KEY).staleness_s(50.0) == 30.0

    def test_staleness_before_any_sample_uses_first_demand(self):
        tracker = SloTracker()
        tracker.note_demand(KEY, 10.0)
        assert tracker.stream(KEY).staleness_s(25.0) == 15.0

    def test_samples_never_move_backwards(self):
        tracker = SloTracker()
        tracker.note_samples(KEY, 1, 20.0)
        tracker.note_samples(KEY, 1, 15.0)
        assert tracker.stream(KEY).last_sample_s == 20.0


class TestGauges:
    def test_empty_tracker_is_fully_covered(self):
        metrics = MetricsRegistry()
        SloTracker().update_gauges(metrics, 0.0)
        assert metrics.gauge_value("slo.streams") == 0
        assert metrics.gauge_value("slo.covered_fraction") == 1.0

    def test_under_coverage_surfaces_in_gauges(self):
        policy = SloPolicy(under_epochs=2)
        tracker = SloTracker(policy)
        other = ((9, 9), "NetB", "latency")
        for _ in range(2):
            tracker.note_demand(KEY, 0.0)
            tracker.note_epoch_close(KEY, 1, 1.0)
        tracker.note_demand(other, 0.0)
        tracker.note_epoch_close(other, 50, 1.0)
        # Keep both demanded for the current tick's gauge pass.
        tracker.note_demand(KEY, 2.0)
        tracker.note_demand(other, 2.0)
        metrics = MetricsRegistry()
        tracker.update_gauges(metrics, 2.0)
        assert metrics.gauge_value("slo.streams") == 2
        assert metrics.gauge_value("slo.demanded_streams") == 2
        assert metrics.gauge_value("slo.under_covered_streams") == 1
        assert metrics.gauge_value("slo.worst_consecutive_under_epochs") == 2
        assert metrics.gauge_value("slo.covered_fraction") == 0.5

    def test_stale_streams_gauge(self):
        policy = SloPolicy(staleness_limit_s=100.0)
        tracker = SloTracker(policy)
        tracker.note_demand(KEY, 0.0)
        tracker.note_samples(KEY, 3, 10.0)
        metrics = MetricsRegistry()
        tracker.update_gauges(metrics, 500.0)
        assert metrics.gauge_value("slo.max_staleness_s") == 490.0
        assert metrics.gauge_value("slo.stale_streams") == 1

    def test_undemanded_streams_do_not_hold_staleness_hostage(self):
        tracker = SloTracker(SloPolicy(staleness_limit_s=100.0))
        tracker.note_demand(KEY, 0.0)
        tracker.note_epoch_close(KEY, 0, 1.0)  # clears demand
        metrics = MetricsRegistry()
        tracker.update_gauges(metrics, 10_000.0)
        assert metrics.gauge_value("slo.stale_streams") == 0
        assert metrics.gauge_value("slo.max_staleness_s") == 0.0


class TestDefaultRules:
    def test_rules_follow_policy(self):
        rules = default_slo_rules(SloPolicy(under_epochs=3,
                                            staleness_limit_s=60.0))
        by_name = {r.name: r for r in rules}
        under = by_name["slo.under_coverage"]
        assert under.metric == "slo.worst_consecutive_under_epochs"
        assert under.op == ">="
        assert under.value == 3.0
        assert under.severity == "critical"
        stale = by_name["slo.staleness"]
        assert stale.value == 60.0

    def test_breach_fires_through_alert_engine(self):
        """SLO gauges + default rules = the blackout alert, end to end."""
        from repro.obs.alerts import AlertEngine
        from repro.obs.telemetry import Telemetry

        tel = Telemetry()
        tracker = SloTracker()
        engine = AlertEngine(default_slo_rules(), tel)

        def snap_at(t):
            tracker.update_gauges(tel.metrics, t)
            return {
                "t": t,
                "counters": {},
                "gauges": {
                    name: tel.metrics.gauge_value(name)
                    for name in (
                        "slo.worst_consecutive_under_epochs",
                        "slo.max_staleness_s",
                    )
                },
            }

        tracker.note_demand(KEY, 0.0)
        tracker.note_epoch_close(KEY, 1, 10.0)
        tracker.note_demand(KEY, 11.0)
        assert engine.evaluate(snap_at(10.0)) == []
        tracker.note_epoch_close(KEY, 0, 20.0)
        tracker.note_demand(KEY, 21.0)
        out = engine.evaluate(snap_at(20.0))
        assert [o["transition"] for o in out] == ["fired"]
        tracker.note_epoch_close(KEY, 30, 30.0)
        out = engine.evaluate(snap_at(30.0))
        assert [o["transition"] for o in out] == ["resolved"]
