"""The coordinator as a network service.

The in-process simulation calls :class:`MeasurementCoordinator` methods
directly; this package puts the same coordinator behind an asyncio TCP
service speaking a versioned, length-prefixed JSON protocol
(:mod:`repro.serve.wire`), with durable WAL-backed ingest
(:mod:`repro.serve.wal`), a session layer with heartbeats and
backpressure (:mod:`repro.serve.server`), a client driver that runs
existing agents over the wire (:mod:`repro.serve.driver`), and a
load-generation harness (:mod:`repro.serve.loadgen`).

Scale-out lives in three more modules: :mod:`repro.serve.shardmap`
(rendezvous-hashed zone->shard assignment with content-hashed
versions), :mod:`repro.serve.gateway` (the cluster's control plane:
map distribution, REDIRECT steering, aggregated STATS), and
:mod:`repro.serve.cluster` (a local supervisor that spawns shard
processes, rebalances on death, and drains dead WALs into survivors).

Nothing here is imported by the simulation path — goldens are
bit-identical when the service is unused.
"""

from repro.serve.cluster import ClusterConfig, LocalCluster, replay_cluster
from repro.serve.driver import (
    DriverStats,
    Redirected,
    ServedClient,
    ServeSession,
)
from repro.serve.gateway import (
    GatewayConfig,
    GatewayServer,
    aggregate_snapshots,
)
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenResult,
    run_loadgen,
    run_loadgen_sync,
)
from repro.serve.server import (
    CoordinatorServer,
    ServeConfig,
    build_coordinator,
    install_uvloop,
    replay_wal,
)
from repro.serve.shardmap import ShardInfo, ShardMap
from repro.serve.wal import WalCorruptionError, WriteAheadLog
from repro.serve.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    FrameTooLargeError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    SUPPORTED_CODECS,
    TruncatedFrameError,
    VersionMismatchError,
    WireError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "CODEC_JSON",
    "CODEC_BINARY",
    "SUPPORTED_CODECS",
    "WireError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "ProtocolError",
    "VersionMismatchError",
    "WriteAheadLog",
    "WalCorruptionError",
    "CoordinatorServer",
    "ServeConfig",
    "build_coordinator",
    "install_uvloop",
    "replay_wal",
    "ServeSession",
    "ServedClient",
    "DriverStats",
    "Redirected",
    "LoadgenConfig",
    "LoadgenResult",
    "run_loadgen",
    "run_loadgen_sync",
    "ShardInfo",
    "ShardMap",
    "GatewayConfig",
    "GatewayServer",
    "aggregate_snapshots",
    "ClusterConfig",
    "LocalCluster",
    "replay_cluster",
]
