"""Render telemetry artifacts as an operator-readable text report.

``repro obs report out/`` reads the artifacts a telemetry-enabled run
wrote (``metrics.json``, ``events.jsonl``, ``spans.json``, optionally
``manifest.json``) and prints the run's story: headline counters, the
hottest spans, histogram percentiles, event volume by kind, and how
each zone's sample budget and epoch duration converged across
recalibrations.  :func:`render_report` also accepts a live
:class:`~repro.obs.telemetry.Telemetry` (plus manifest) directly, which
is how ``examples/operator_dashboard.py`` embeds the same rendering
without a round-trip through files.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.obs.events import read_events
from repro.obs.telemetry import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    METRICS_FILENAME,
    SPANS_FILENAME,
    Telemetry,
)

__all__ = [
    "load_artifacts",
    "render_live",
    "render_report",
    "render_report_from_dir",
]

#: Percentiles rendered for every histogram.
REPORT_QUANTILES = (0.50, 0.90, 0.99)


def _table(headers):
    """Lazily import the shared table renderer.

    ``repro.analysis`` imports core/radio modules that themselves import
    ``repro.obs`` for instrumentation; deferring the import to render
    time (a cold path) keeps the obs package import-light and cycle-free.
    """
    from repro.analysis.tables import TextTable

    return TextTable(headers)


def load_artifacts(out_dir: str) -> dict:
    """Read whichever artifact files exist under ``out_dir``."""
    artifacts: dict = {
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "events": [],
        "spans": {},
        "manifest": None,
    }
    metrics_path = os.path.join(out_dir, METRICS_FILENAME)
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as fh:
            artifacts["metrics"] = json.load(fh)
    events_path = os.path.join(out_dir, EVENTS_FILENAME)
    if os.path.exists(events_path):
        artifacts["events"] = read_events(events_path)
    spans_path = os.path.join(out_dir, SPANS_FILENAME)
    if os.path.exists(spans_path):
        with open(spans_path, "r", encoding="utf-8") as fh:
            artifacts["spans"] = json.load(fh)
    manifest_path = os.path.join(out_dir, MANIFEST_FILENAME)
    if os.path.exists(manifest_path):
        with open(manifest_path, "r", encoding="utf-8") as fh:
            artifacts["manifest"] = json.load(fh)
    return artifacts


def _histogram_quantile(snapshot: dict, q: float) -> float:
    """Fixed-bucket quantile from a serialized histogram snapshot."""
    total = snapshot.get("count", 0)
    if not total:
        return float("nan")
    rank = q * total
    seen = 0
    bounds = snapshot["buckets"]
    for i, c in enumerate(snapshot["counts"]):
        seen += c
        if seen >= rank and c:
            if i < len(bounds):
                return bounds[i]
            return snapshot.get("max") or float("nan")
    return snapshot.get("max") or float("nan")


def _section(title: str) -> str:
    return f"\n-- {title} " + "-" * max(1, 60 - len(title)) + "\n"


def _render_manifest(manifest: Optional[dict], lines: List[str]) -> None:
    if not manifest:
        return
    lines.append(_section("run manifest"))
    bits = [f"kind={manifest.get('run_kind', '?')}",
            f"seed={manifest.get('seed', '?')}"]
    if "gen_seed" in manifest:
        bits.append(f"gen_seed={manifest['gen_seed']}")
    if "config_hash" in manifest:
        bits.append(f"config={manifest['config_hash']}")
    lines.append("  " + " ".join(bits))
    versions = manifest.get("versions", {})
    if versions:
        lines.append(
            "  versions: "
            + " ".join(f"{k}={v}" for k, v in sorted(versions.items()))
        )
    grid = manifest.get("zone_grid")
    if grid:
        lines.append(
            "  zone grid: "
            + " ".join(f"{k}={v}" for k, v in sorted(grid.items()))
        )


def _render_counters(metrics: dict, lines: List[str]) -> None:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    if not counters and not gauges:
        return
    lines.append(_section("counters & gauges"))
    table = _table(["metric", "value"])
    for name in sorted(counters):
        value = counters[name]
        rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
        table.add_row(name, rendered)
    for name in sorted(gauges):
        table.add_row(f"{name} (gauge)", f"{gauges[name]:.6g}")
    lines.append(table.render(indent="  "))


def _render_histograms(metrics: dict, lines: List[str]) -> None:
    histograms = metrics.get("histograms", {})
    if not histograms:
        return
    lines.append(_section("histogram percentiles"))
    headers = ["histogram", "count", "mean"] + [
        f"p{int(q * 100)}" for q in REPORT_QUANTILES
    ]
    table = _table(headers)
    for name in sorted(histograms):
        snap = histograms[name]
        count = snap.get("count", 0)
        mean = (snap.get("sum", 0.0) / count) if count else float("nan")
        row = [name, str(count), f"{mean:.4g}"]
        for q in REPORT_QUANTILES:
            row.append(f"{_histogram_quantile(snap, q):.4g}")
        table.add_row(*row)
    lines.append(table.render(indent="  "))


def _render_spans(spans: dict, lines: List[str], top_n: int = 12) -> None:
    if not spans:
        return
    lines.append(_section(f"top spans (by total wall time, max {top_n})"))
    ranked = sorted(
        spans.items(), key=lambda kv: (-kv[1].get("wall_s", 0.0), kv[0])
    )[:top_n]
    table = _table(
        ["span", "count", "total wall s", "mean ms", "cpu s"]
    )
    for key, s in ranked:
        count = s.get("count", 0)
        table.add_row(
            key,
            str(count),
            f"{s.get('wall_s', 0.0):.4f}",
            f"{s.get('mean_wall_s', 0.0) * 1e3:.3f}",
            f"{s.get('cpu_s', 0.0):.4f}",
        )
    lines.append(table.render(indent="  "))


def _render_event_volume(events: List[dict], lines: List[str]) -> None:
    if not events:
        return
    counts: Dict[str, int] = {}
    for e in events:
        counts[e.get("kind", "?")] = counts.get(e.get("kind", "?"), 0) + 1
    lines.append(_section("event volume"))
    table = _table(["kind", "events"])
    for kind in sorted(counts):
        table.add_row(kind, str(counts[kind]))
    lines.append(table.render(indent="  "))
    t_first = events[0].get("t", 0.0)
    t_last = events[-1].get("t", 0.0)
    lines.append(
        f"  {len(events)} events over sim t=[{t_first:.0f}, {t_last:.0f}] s"
    )


def _render_budget_convergence(events: List[dict], lines: List[str]) -> None:
    """Per-stream sample-budget/epoch trajectory from recalibrate events."""
    recals = [e for e in events if e.get("kind") == "calibration.recalibrate"]
    if not recals:
        return
    streams: Dict[Tuple, List[dict]] = {}
    for e in recals:
        zone = e.get("zone")
        if isinstance(zone, list):  # JSON arrays are unhashable
            zone = tuple(zone)
        key = (zone, e.get("network"), e.get("metric"))
        streams.setdefault(key, []).append(e)
    lines.append(_section("sample-budget convergence (per recalibrated stream)"))
    table = _table(
        ["zone", "net", "metric", "recals", "budget", "epoch s"]
    )
    for key in sorted(streams, key=str):
        series = streams[key]
        first, last = series[0], series[-1]
        budget = f"{first.get('budget_before', '?')}->{last.get('budget', '?')}"
        epoch = (
            f"{first.get('epoch_s_before', 0.0):.0f}->{last.get('epoch_s', 0.0):.0f}"
        )
        zone, net, metric = key
        table.add_row(
            str(zone), str(net), str(metric), str(len(series)), budget, epoch
        )
    lines.append(table.render(indent="  "))


def render_report(
    metrics: dict,
    events: List[dict],
    spans: dict,
    manifest: Optional[dict] = None,
    title: str = "telemetry report",
) -> str:
    """Assemble the full text report from artifact dicts."""
    lines = [f"== {title} " + "=" * max(1, 64 - len(title))]
    _render_manifest(manifest, lines)
    _render_counters(metrics, lines)
    _render_histograms(metrics, lines)
    _render_spans(spans, lines)
    _render_event_volume(events, lines)
    _render_budget_convergence(events, lines)
    if len(lines) == 1:
        lines.append("  (no telemetry recorded)")
    return "\n".join(lines)


def render_report_from_dir(out_dir: str, title: Optional[str] = None) -> str:
    """Load artifacts from ``out_dir`` and render the report."""
    artifacts = load_artifacts(out_dir)
    return render_report(
        artifacts["metrics"],
        artifacts["events"],
        artifacts["spans"],
        artifacts["manifest"],
        title=title or f"telemetry report: {out_dir}",
    )


def render_live(telemetry: Telemetry, manifest=None, title: str = "telemetry report") -> str:
    """Render directly from a live Telemetry (no files involved)."""
    return render_report(
        telemetry.metrics.snapshot(),
        telemetry.events.events(),
        telemetry.tracer.snapshot(),
        manifest.to_dict() if manifest is not None else None,
        title=title,
    )
