"""Table 3: Static vs Proximate closeness.

Client-sourced measurements collected while driving around a zone
(Proximate) approximate the static ground truth at the zone's center:
the paper reports means agreeing within a few percent for every
network/metric, e.g. NetB-WI UDP 876 vs 855 Kbps (<1% error).
"""

import math

import numpy as np

from repro.analysis.tables import TextTable
from repro.clients.protocol import MeasurementType
from repro.radio.technology import NetworkId


def _mean_std(records, kind, net):
    vals = [
        r.value for r in records
        if r.kind is kind and r.network is net and not math.isnan(r.value)
    ]
    arr = np.asarray(vals)
    return float(arr.mean()), float(arr.std())


def _jitter_mean(records, net):
    vals = [
        r.jitter_s for r in records
        if r.kind is MeasurementType.UDP_TRAIN and r.network is net
    ]
    return float(np.mean(vals)) * 1e3


def _build(spot_traces, proximate_traces):
    out = {}
    pairs = [
        ("WI", spot_traces["wi"], proximate_traces["wi"],
         [NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C]),
        ("NJ", spot_traces["nj"], proximate_traces["nj"],
         [NetworkId.NET_B, NetworkId.NET_C]),
    ]
    for region, static, proximate, nets in pairs:
        for net in nets:
            s_mean, s_std = _mean_std(static, MeasurementType.UDP_TRAIN, net)
            p_mean, p_std = _mean_std(proximate, MeasurementType.UDP_TRAIN, net)
            out[(region, net)] = {
                "static_udp": (s_mean, s_std),
                "prox_udp": (p_mean, p_std),
                "static_jitter_ms": _jitter_mean(static, net),
                "prox_jitter_ms": _jitter_mean(proximate, net),
            }
    return out


def test_table3_static_vs_proximate(spot_traces, proximate_traces, benchmark):
    rows = benchmark.pedantic(
        _build, args=(spot_traces, proximate_traces), rounds=1, iterations=1
    )

    table = TextTable(
        ["net-region", "Static UDP Kbps", "Prox UDP Kbps", "err %",
         "Static jit ms", "Prox jit ms"],
        formats=["", ".0f", ".0f", ".1f", ".2f", ".2f"],
    )
    errors = {}
    for (region, net), m in rows.items():
        s_mean = m["static_udp"][0]
        p_mean = m["prox_udp"][0]
        err = abs(p_mean - s_mean) / s_mean
        errors[(region, net)] = err
        table.add_row(
            f"{net.value}-{region}", s_mean / 1e3, p_mean / 1e3, err * 100.0,
            m["static_jitter_ms"], m["prox_jitter_ms"],
        )
    print("\nTable 3 — Static (ground truth) vs Proximate (client-sourced)")
    print(table.render())

    # Shape: client-sourced means within a few percent of static truth
    # for every network/region; jitter agrees too.
    for (region, net), err in errors.items():
        assert err < 0.10, f"{net.value}-{region} off by {err:.1%}"
    for m in rows.values():
        assert m["prox_jitter_ms"] == np.float64(m["prox_jitter_ms"])  # finite
        assert abs(m["prox_jitter_ms"] - m["static_jitter_ms"]) < max(
            2.0, 0.5 * m["static_jitter_ms"]
        )
