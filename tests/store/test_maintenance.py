"""Retention/compaction tests (repro.store.maintenance)."""

import pytest

from repro.store import (
    RetentionPolicy,
    StoreError,
    apply_retention,
    compact,
    connect,
    coverage,
    create_run,
    drop_run,
    ingest_reports,
    integrity_check,
    replay_snapshot,
    resolve_run,
    store_stats,
)

from tests.store.helpers import EPOCH_S, default_grid, make_report


@pytest.fixture
def store(tmp_path):
    conn = connect(str(tmp_path / "store.sqlite"))
    yield conn
    conn.close()


def _spread_reports(n_epochs=6, per_epoch=4):
    """Reports spread one batch per epoch across ``n_epochs`` epochs."""
    reports = []
    for e in range(n_epochs):
        for j in range(per_epoch):
            reports.append(
                make_report(e * per_epoch + j, start_s=e * EPOCH_S + 60.0)
            )
    return reports


class TestRetention:
    def test_prunes_samples_but_keeps_rollups(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id, _spread_reports(), default_grid())
        rollups_before = coverage(store, run_id)
        snap_before = replay_snapshot(store, run_id)

        deleted = apply_retention(store, RetentionPolicy(keep_epochs=2))
        assert deleted > 0
        remaining = store.execute(
            "SELECT COUNT(*) FROM samples WHERE run_id = ?", (run_id,)
        ).fetchone()[0]
        assert remaining == 24 - deleted
        # aggregates are the product; pruning receipts must not move them
        assert coverage(store, run_id) == rollups_before
        assert replay_snapshot(store, run_id) == snap_before

        epochs_left = {row[0] for row in store.execute(
            "SELECT DISTINCT CAST(start_s / ? AS INTEGER) FROM samples"
            " WHERE run_id = ?", (EPOCH_S, run_id))}
        assert epochs_left == {3, 4, 5}  # newest epoch minus keep_epochs

    def test_none_policy_is_noop(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id, _spread_reports(), default_grid())
        assert apply_retention(store, RetentionPolicy()) == 0
        n = store.execute("SELECT COUNT(*) FROM samples").fetchone()[0]
        assert n == 24

    def test_negative_keep_epochs_refused(self, store):
        with pytest.raises(StoreError, match="keep_epochs"):
            apply_retention(store, RetentionPolicy(keep_epochs=-1))

    def test_empty_run_survives_retention(self, store):
        create_run(store, "empty", "wal")
        assert apply_retention(store, RetentionPolicy(keep_epochs=0)) == 0


class TestDropAndCompact:
    def test_drop_run_cascades_everywhere(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id, _spread_reports(), default_grid())
        drop_run(store, "r")
        stats = store_stats(store)
        for table in ("runs", "samples", "rollups"):
            assert stats[table] == 0, table

    def test_drop_unknown_run_refused(self, store):
        with pytest.raises(StoreError, match="no run"):
            drop_run(store, "ghost")

    def test_compact_reclaims_space_after_drop(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id,
                       [make_report(i) for i in range(2000)],
                       default_grid())
        store.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        drop_run(store, "r")
        result = compact(store)
        assert result.bytes_after < result.bytes_before
        assert result.bytes_reclaimed == \
            result.bytes_before - result.bytes_after
        assert integrity_check(store) == "ok"

    def test_compact_applies_policy_and_counts(self, store):
        run_id = create_run(store, "r", "wal")
        ingest_reports(store, run_id, _spread_reports(), default_grid())
        result = compact(store, RetentionPolicy(keep_epochs=0))
        assert result.samples_deleted == 20  # all but the newest epoch
        assert resolve_run(store, "r").label == "r"
        assert integrity_check(store) == "ok"

    def test_store_stats_shape(self, store):
        stats = store_stats(store)
        assert stats["file_bytes"] > 0
        assert set(stats) == {
            "runs", "samples", "rollups", "metrics", "histograms",
            "spans", "events", "event_rollups", "alerts",
            "snapshot_stats", "file_bytes",
        }
