"""Movement models: position and speed as functions of simulation time.

All models are *deterministic functions of (seed, t)* — no internal
mutable state — so a client's position can be queried at random access
by the trace generators and the event-driven agent alike.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol, Tuple

from repro.geo.coords import GeoPoint
from repro.mobility.routes import Route
from repro.radio.field import value_noise
from repro.sim.clock import SECONDS_PER_DAY

KMH_TO_MS = 1000.0 / 3600.0


class MovementModel(Protocol):
    """Anything that can say where a client is and how fast it moves."""

    def position(self, t: float) -> GeoPoint:
        """Ground-truth position at simulation time ``t``."""
        ...

    def speed_ms(self, t: float) -> float:
        """Ground speed in m/s at time ``t``."""
        ...

    def is_active(self, t: float) -> bool:
        """Whether the client is powered and in service at ``t``."""
        ...


class StaticPosition:
    """A fixed indoor measurement node (Spot datasets)."""

    def __init__(self, location: GeoPoint):
        self.location = location

    def position(self, t: float) -> GeoPoint:
        return self.location

    def speed_ms(self, t: float) -> float:
        return 0.0

    def is_active(self, t: float) -> bool:
        return True


class RouteFollower:
    """Drives back and forth along a route with a noisy speed profile.

    Speed varies per minute around ``mean_speed_kmh`` (hashed noise, so
    deterministic), with full stops (traffic lights / bus stops) occurring
    in a ``stop_fraction`` of minutes.  Outside the daily operating
    window the vehicle is parked at the route start and inactive.

    Position is computed by integrating the per-minute speed profile
    from the window start; the integral is cached per day.
    """

    _BIN_S = 60.0

    def __init__(
        self,
        route: Route,
        mean_speed_kmh: float = 40.0,
        speed_spread: float = 0.5,
        stop_fraction: float = 0.12,
        day_start_h: float = 6.0,
        day_end_h: float = 24.0,
        seed: int = 0,
        loop: bool = True,
    ):
        if mean_speed_kmh <= 0:
            raise ValueError("mean_speed_kmh must be positive")
        if not 0.0 <= stop_fraction < 1.0:
            raise ValueError("stop_fraction must be in [0, 1)")
        self.route = route
        self.mean_speed_ms = mean_speed_kmh * KMH_TO_MS
        self.speed_spread = speed_spread
        self.stop_fraction = stop_fraction
        self.day_start_s = day_start_h * 3600.0
        self.day_end_s = day_end_h * 3600.0
        self.seed = int(seed)
        self.loop = loop
        self._cache_day: Optional[int] = None
        self._cache_cum: Optional[list] = None

    # -- speed profile -------------------------------------------------

    def _minute_speed(self, minute_index: int) -> float:
        """Deterministic speed for one absolute minute of sim time."""
        u = (value_noise(self.seed, minute_index, 17, 1.0) + 1.0) / 2.0
        if u < self.stop_fraction:
            return 0.0
        # Remap the remaining mass to a symmetric spread around the mean.
        v = (u - self.stop_fraction) / (1.0 - self.stop_fraction)
        factor = 1.0 + self.speed_spread * (2.0 * v - 1.0)
        return self.mean_speed_ms * factor

    def speed_ms(self, t: float) -> float:
        if not self.is_active(t):
            return 0.0
        return self._minute_speed(int(t // self._BIN_S))

    def is_active(self, t: float) -> bool:
        tod = t % SECONDS_PER_DAY
        return self.day_start_s <= tod < self.day_end_s

    # -- position ------------------------------------------------------

    def _day_cumulative(self, day: int) -> list:
        """Cumulative distance at each minute boundary of a service day."""
        if self._cache_day == day and self._cache_cum is not None:
            return self._cache_cum
        start_minute = int((day * SECONDS_PER_DAY + self.day_start_s) // self._BIN_S)
        n_minutes = int((self.day_end_s - self.day_start_s) // self._BIN_S) + 1
        cum = [0.0]
        for k in range(n_minutes):
            cum.append(cum[-1] + self._minute_speed(start_minute + k) * self._BIN_S)
        self._cache_day = day
        self._cache_cum = cum
        return cum

    def distance_travelled(self, t: float) -> float:
        """Distance along the day's run at time ``t`` (0 when inactive)."""
        if not self.is_active(t):
            return 0.0
        day = int(t // SECONDS_PER_DAY)
        day_t = (t % SECONDS_PER_DAY) - self.day_start_s
        cum = self._day_cumulative(day)
        idx = int(day_t // self._BIN_S)
        idx = min(idx, len(cum) - 2)
        frac_s = day_t - idx * self._BIN_S
        start_minute = int((day * SECONDS_PER_DAY + self.day_start_s) // self._BIN_S)
        return cum[idx] + self._minute_speed(start_minute + idx) * frac_s

    def position(self, t: float) -> GeoPoint:
        d = self.distance_travelled(t)
        length = self.route.length_m
        if length == 0:
            return self.route.waypoints[0]
        if self.loop:
            # Out-and-back: 0..L..0..L.. (triangle wave over 2L).
            phase = d % (2.0 * length)
            arc = phase if phase <= length else 2.0 * length - phase
        else:
            arc = min(d, length)
        return self.route.point_at(arc)


class ProximateLoop(RouteFollower):
    """Slow circling within a zone (the Proximate data collection).

    A convenience subclass: a loop route around ``center`` driven at
    residential speeds all day.
    """

    def __init__(
        self,
        center: GeoPoint,
        radius_m: float = 200.0,
        seed: int = 0,
        day_start_h: float = 0.0,
        day_end_h: float = 24.0,
    ):
        from repro.mobility.routes import loop_route

        super().__init__(
            route=loop_route(center, radius_m, name="proximate"),
            mean_speed_kmh=25.0,
            speed_spread=0.4,
            stop_fraction=0.15,
            day_start_h=day_start_h,
            day_end_h=day_end_h,
            seed=seed,
            loop=True,
        )
        self.center = center
        self.radius_m = radius_m


class ScheduledTrip:
    """One-shot trip along a route starting at a fixed time.

    Used for intercity bus departures: the vehicle is inactive before
    departure and after arrival (it stays parked at the far end).
    """

    def __init__(
        self,
        route: Route,
        depart_t: float,
        mean_speed_kmh: float = 90.0,
        speed_spread: float = 0.25,
        seed: int = 0,
        reverse: bool = False,
    ):
        self.route = route
        self.depart_t = depart_t
        self.mean_speed_ms = mean_speed_kmh * KMH_TO_MS
        self.speed_spread = speed_spread
        self.seed = int(seed)
        self.reverse = reverse

    def _minute_speed(self, minute_index: int) -> float:
        noise = value_noise(self.seed, minute_index, 29, 1.0)
        return max(0.0, self.mean_speed_ms * (1.0 + self.speed_spread * noise))

    @property
    def duration_s(self) -> float:
        """Approximate trip duration at the mean speed."""
        return self.route.length_m / self.mean_speed_ms

    def distance_travelled(self, t: float) -> float:
        if t <= self.depart_t:
            return 0.0
        dt = t - self.depart_t
        whole_minutes = int(dt // 60.0)
        base_minute = int(self.depart_t // 60.0)
        d = sum(
            self._minute_speed(base_minute + k) * 60.0
            for k in range(whole_minutes)
        )
        d += self._minute_speed(base_minute + whole_minutes) * (dt - whole_minutes * 60.0)
        return min(d, self.route.length_m)

    def in_transit(self, t: float) -> bool:
        return (
            t >= self.depart_t
            and self.distance_travelled(t) < self.route.length_m
        )

    def position(self, t: float) -> GeoPoint:
        d = self.distance_travelled(t)
        arc = self.route.length_m - d if self.reverse else d
        return self.route.point_at(arc)

    def speed_ms(self, t: float) -> float:
        if not self.in_transit(t):
            return 0.0
        return self._minute_speed(int(t // 60.0))
