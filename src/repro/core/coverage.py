"""Coverage and freshness accounting.

Operators need to know not just what WiScape estimates, but *where it is
blind*: zones never measured, and zones whose published estimate has
gone stale (no epoch closed for several epoch-lengths — the clients
stopped passing through).  This module summarizes the record store into
a coverage report, the complement of the Fig 1 map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.clients.protocol import MeasurementType
from repro.core.records import ZoneRecordStore
from repro.geo.zones import ZoneGrid, ZoneId
from repro.radio.technology import NetworkId


@dataclass(frozen=True)
class ZoneCoverage:
    """Freshness of one (zone, carrier, kind) stream at a point in time."""

    zone_id: ZoneId
    network: NetworkId
    kind: MeasurementType
    age_s: Optional[float]  # None = never published
    epoch_s: float

    @property
    def fresh(self) -> bool:
        """Published within the last two epoch lengths."""
        return self.age_s is not None and self.age_s <= 2.0 * self.epoch_s

    @property
    def stale(self) -> bool:
        return self.age_s is not None and not self.fresh

    @property
    def blind(self) -> bool:
        return self.age_s is None


@dataclass
class CoverageReport:
    """Store-wide coverage summary."""

    now_s: float
    entries: List[ZoneCoverage] = field(default_factory=list)

    @property
    def fresh(self) -> List[ZoneCoverage]:
        return [e for e in self.entries if e.fresh]

    @property
    def stale(self) -> List[ZoneCoverage]:
        return [e for e in self.entries if e.stale]

    @property
    def blind(self) -> List[ZoneCoverage]:
        return [e for e in self.entries if e.blind]

    @property
    def fresh_fraction(self) -> float:
        return len(self.fresh) / len(self.entries) if self.entries else 0.0

    def zones(self, predicate: str = "stale") -> Set[ZoneId]:
        """Distinct zone ids in one of the states (fresh/stale/blind)."""
        return {e.zone_id for e in getattr(self, predicate)}


def coverage_report(
    store: ZoneRecordStore,
    now_s: float,
    kind: Optional[MeasurementType] = None,
) -> CoverageReport:
    """Summarize the freshness of every stream in the store."""
    report = CoverageReport(now_s=now_s)
    for record in store.records():
        zone_id, network, record_kind = record.key
        if kind is not None and record_kind is not kind:
            continue
        if record.published is None:
            age: Optional[float] = None
        else:
            age = max(0.0, now_s - record.published.end_s)
        report.entries.append(
            ZoneCoverage(
                zone_id=zone_id,
                network=network,
                kind=record_kind,
                age_s=age,
                epoch_s=record.epoch_s,
            )
        )
    return report


def blind_neighbor_zones(
    grid: ZoneGrid,
    covered: Sequence[ZoneId],
    ring: int = 1,
) -> Set[ZoneId]:
    """Zones adjacent to coverage but never measured themselves.

    These are the cheapest coverage wins: clients already pass nearby,
    so a small scheduling nudge (or one targeted drive) fills them.
    """
    covered_set = set(covered)
    out: Set[ZoneId] = set()
    for zone_id in covered_set:
        for neighbor in grid.neighbors(zone_id, ring=ring):
            if neighbor.zone_id not in covered_set:
                out.add(neighbor.zone_id)
    return out
