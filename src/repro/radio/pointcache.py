"""Quantized-location cache for time-invariant link quantities.

The ground-truth stack splits a link-state query into time-invariant
per-point quantities (region binding, smooth coverage, spatial value,
failure-patch membership) and cheap time-varying factors (temporal
process, events, patch swings).  Clients revisit locations constantly —
static spots query one point forever, proximate loops and bus routes
re-cross the same streets daily — so the expensive per-point part is
cached here, keyed by the location quantized to a small lattice.

Cache invariants (relied on by the equivalence tests):

* **Determinism / order independence**: the stored value is computed at
  the quantization-cell *center*, never at the first point that happened
  to land in the cell.  A query's result is therefore a pure function of
  its quantized location — independent of what was queried before, of
  batch composition, and of cold-vs-warm state.
* **Bounded error**: a cached result differs from the exact one by at
  most the field variation across half a cell.  With the default 0.25 m
  quantum that is orders of magnitude below GPS error (meters) and the
  texture correlation length (hundreds of meters).
* **LRU bounded**: at most ``maxsize`` entries are retained.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional, Tuple

#: Default quantization lattice pitch, meters.
DEFAULT_QUANTUM_M = 0.25
#: Default maximum number of cached points per network.
DEFAULT_MAXSIZE = 262_144


class PointCache:
    """LRU map from quantized projected-xy cells to cached tuples."""

    def __init__(
        self,
        quantum_m: float = DEFAULT_QUANTUM_M,
        maxsize: int = DEFAULT_MAXSIZE,
    ):
        if quantum_m <= 0:
            raise ValueError("quantum_m must be positive")
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.quantum_m = float(quantum_m)
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, tuple]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def key_for(self, x: float, y: float) -> Tuple[int, int]:
        """Quantization-cell key for projected coordinates (meters)."""
        q = self.quantum_m
        return (int(round(x / q)), int(round(y / q)))

    def center_xy(self, key: Tuple[int, int]) -> Tuple[float, float]:
        """Projected coordinates of a cell's center (evaluation point)."""
        return (key[0] * self.quantum_m, key[1] * self.quantum_m)

    def get(self, key: Hashable) -> Optional[tuple]:
        """Cached tuple for ``key`` (refreshing LRU order), else None."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: tuple) -> None:
        """Insert/refresh an entry, evicting the LRU tail when full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        while len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
