"""Web workloads for the application experiments.

The paper's clients request pages "from a webserver hosting a pool of
1000 web pages with sizes between 2.8 KBytes and 3.2 MBytes, generated
using SURGE" plus depth-1 crawls of well-known sites.  SURGE models page
sizes as a hybrid lognormal body + Pareto tail; we reproduce that and
clamp to the paper's size range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

MIN_PAGE_BYTES = 2_800
MAX_PAGE_BYTES = 3_200_000


@dataclass(frozen=True)
class WebPage:
    """One HTTP object to fetch."""

    page_id: str
    size_bytes: int


def surge_page_pool(
    count: int = 1000,
    seed: int = 0,
    body_median_bytes: float = 18_000.0,
    body_sigma: float = 1.1,
    tail_fraction: float = 0.12,
    tail_alpha: float = 1.2,
) -> List[WebPage]:
    """A SURGE-style page pool: lognormal body, Pareto tail.

    Sizes are clamped to the paper's [2.8 KB, 3.2 MB] range.  The
    defaults give a median around 18 KB with a heavy tail — the usual
    2000s-web shape SURGE was fitted to.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    pages: List[WebPage] = []
    for i in range(count):
        if rng.uniform() < tail_fraction:
            size = MIN_PAGE_BYTES * 40 * float(rng.pareto(tail_alpha) + 1.0)
        else:
            size = float(
                body_median_bytes * np.exp(rng.normal(0.0, body_sigma))
            )
        size = min(MAX_PAGE_BYTES, max(MIN_PAGE_BYTES, size))
        pages.append(WebPage(page_id=f"surge-{i}", size_bytes=int(size)))
    return pages


#: Depth-1 page bundles for the well-known sites of Fig 14: the main
#: page plus embedded objects.  Sizes are representative of the sites'
#: 2011-era footprints (media-heavy youtube/cnn, lean microsoft).
WELL_KNOWN_SITES: Dict[str, List[int]] = {
    "cnn": [120_000] + [45_000] * 8 + [240_000] * 3 + [850_000],
    "microsoft": [60_000] + [25_000] * 6 + [110_000] * 2,
    "youtube": [150_000] + [70_000] * 6 + [1_600_000] * 2,
    "amazon": [190_000] + [55_000] * 10 + [320_000] * 4,
}


def website_bundle(site: str) -> List[WebPage]:
    """The depth-1 object list for one well-known site."""
    try:
        sizes = WELL_KNOWN_SITES[site]
    except KeyError:
        raise KeyError(
            f"unknown site {site!r}; options: {sorted(WELL_KNOWN_SITES)}"
        ) from None
    return [
        WebPage(page_id=f"{site}-{i}", size_bytes=s)
        for i, s in enumerate(sizes)
    ]


def total_bytes(pages: List[WebPage]) -> int:
    """Total payload of a page list."""
    return sum(p.size_bytes for p in pages)
