"""The coordinator service's versioned, length-prefixed wire protocol.

Every frame on the control channel is a 4-byte big-endian unsigned
length prefix followed by exactly that many bytes of UTF-8 JSON — one
flat object whose ``"type"`` key names the frame.  The payload encoding
is canonical (sorted keys, compact separators), so a frame's bytes are
a pure function of its message dict, and Python's repr-based float
serialization round-trips every ``MeasurementReport`` field exactly —
the property the WAL-replay byte-identity guarantee rests on.  ``NaN``
is allowed (a failed ping's primary value is NaN); both ends are this
module, so the non-strict JSON extension is safe.

Frame types (see DESIGN.md §10 for the session state machine):

=========  ======================  =====================================
type       direction               purpose
=========  ======================  =====================================
HELLO      client -> server        open a session (carries protocol ``v``)
WELCOME    server -> client        session accepted (id, limits, cadence)
POLL       client -> server        position beacon asking for work
TASK       server -> client        a ``MeasurementTask`` to execute
REPORT     client -> server        a completed ``MeasurementReport``
ACK        server -> client        report durably staged (WAL sequence)
RETRY      server -> client        ingest saturated; retry after a delay
PING/PONG  both                    heartbeat / "no task for you"
STATS      client -> server        ask for the server's metric snapshots
ERROR      server -> client        typed protocol error; session closes
BYE        both                    orderly close
=========  ======================  =====================================

Malformed input never tracebacks a session: decoding raises one of the
typed :class:`WireError` subclasses below, which the session layer maps
to an ERROR frame (``code`` = the exception's wire code) followed by a
close.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.clients.protocol import (
    MeasurementReport,
    MeasurementTask,
    MeasurementType,
)
from repro.geo.coords import GeoPoint
from repro.radio.technology import NetworkId

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "LENGTH_PREFIX",
    "FRAME_TYPES",
    "WireError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "ProtocolError",
    "VersionMismatchError",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "task_to_wire",
    "task_from_wire",
    "report_to_wire",
    "report_from_wire",
]

#: Protocol version spoken by this build.  A HELLO carrying any other
#: version is answered with an ERROR(code="version-mismatch") and the
#: session is closed — there is exactly one version in the wild so far.
PROTOCOL_VERSION = 1

#: Hard ceiling on a frame's payload size.  A length prefix above this
#: is treated as a protocol violation (corrupt stream or hostile peer),
#: not an allocation request.
MAX_FRAME_BYTES = 1 << 20

#: The 4-byte big-endian unsigned length prefix.
LENGTH_PREFIX = struct.Struct(">I")

#: Every frame type either end may legitimately send.
FRAME_TYPES = frozenset(
    {
        "HELLO", "WELCOME", "POLL", "TASK", "REPORT", "ACK", "RETRY",
        "PING", "PONG", "STATS", "STATS_REPLY", "ERROR", "BYE",
    }
)


class WireError(Exception):
    """Base of every typed protocol failure.

    ``code`` is the machine-readable token carried by the ERROR frame a
    server answers with; ``detail`` is the human-readable elaboration.
    """

    code = "protocol-error"

    def __init__(self, detail: str = ""):
        super().__init__(detail or self.code)
        self.detail = detail or self.code


class FrameTooLargeError(WireError):
    """Length prefix exceeds the negotiated maximum frame size."""

    code = "frame-too-large"


class TruncatedFrameError(WireError):
    """The stream ended mid-frame (partial prefix or partial payload)."""

    code = "truncated-frame"


class ProtocolError(WireError):
    """Payload is not a valid frame (bad JSON, wrong shape, bad type)."""

    code = "bad-frame"


class VersionMismatchError(WireError):
    """HELLO carried a protocol version this server does not speak."""

    code = "version-mismatch"


def encode_frame(message: Dict[str, Any],
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message dict to its length-prefixed frame bytes.

    Raises :class:`ProtocolError` for a message without a ``type`` and
    :class:`FrameTooLargeError` when the encoded payload would exceed
    ``max_frame_bytes`` (the sender's symmetric share of the limit).
    """
    if "type" not in message:
        raise ProtocolError("message has no 'type'")
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame payload {len(payload)} bytes > limit {max_frame_bytes}"
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a frame payload into its message dict (typed errors only)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("frame has no string 'type'")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream.

    Returns the decoded message dict, or ``None`` on a clean EOF at a
    frame boundary (the peer closed between frames).  Raises
    :class:`TruncatedFrameError` on EOF inside a frame,
    :class:`FrameTooLargeError` for an oversized length prefix, and
    :class:`ProtocolError` for undecodable payloads.
    """
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise TruncatedFrameError(
            f"EOF after {len(exc.partial)} of {LENGTH_PREFIX.size} "
            "length-prefix bytes"
        ) from None
    (length,) = LENGTH_PREFIX.unpack(prefix)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame length {length} > limit {max_frame_bytes}"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            f"EOF after {len(exc.partial)} of {length} payload bytes"
        ) from None
    return decode_payload(payload)


# -- dataclass codecs --------------------------------------------------------


def task_to_wire(task: MeasurementTask) -> Dict[str, Any]:
    """``MeasurementTask`` -> JSON-ready dict (exact float round-trip)."""
    return {
        "task_id": task.task_id,
        "network": task.network.value,
        "kind": task.kind.value,
        "zone_id": list(task.zone_id) if task.zone_id is not None else None,
        "issued_at_s": task.issued_at_s,
        "deadline_s": task.deadline_s,
        "params": dict(task.params),
    }


def task_from_wire(data: Dict[str, Any]) -> MeasurementTask:
    """Wire dict -> ``MeasurementTask`` (:class:`ProtocolError` if malformed)."""
    try:
        zone = data.get("zone_id")
        return MeasurementTask(
            task_id=int(data["task_id"]),
            network=NetworkId(data["network"]),
            kind=MeasurementType(data["kind"]),
            zone_id=(int(zone[0]), int(zone[1])) if zone is not None else None,
            issued_at_s=float(data.get("issued_at_s", 0.0)),
            deadline_s=(
                float(data["deadline_s"])
                if data.get("deadline_s") is not None else None
            ),
            params={str(k): float(v)
                    for k, v in (data.get("params") or {}).items()},
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ProtocolError(f"malformed TASK payload: {exc}") from None


def report_to_wire(report: MeasurementReport) -> Dict[str, Any]:
    """``MeasurementReport`` -> JSON-ready dict (exact float round-trip)."""
    return {
        "task_id": report.task_id,
        "client_id": report.client_id,
        "network": report.network.value,
        "kind": report.kind.value,
        "start_s": report.start_s,
        "end_s": report.end_s,
        "lat": report.point.lat,
        "lon": report.point.lon,
        "speed_ms": report.speed_ms,
        "value": report.value,
        "samples": list(report.samples),
        "extras": dict(report.extras),
    }


def report_from_wire(data: Dict[str, Any]) -> MeasurementReport:
    """Wire dict -> ``MeasurementReport`` (:class:`ProtocolError` if malformed)."""
    try:
        return MeasurementReport(
            task_id=int(data["task_id"]),
            client_id=str(data["client_id"]),
            network=NetworkId(data["network"]),
            kind=MeasurementType(data["kind"]),
            start_s=float(data["start_s"]),
            end_s=float(data["end_s"]),
            point=GeoPoint(float(data["lat"]), float(data["lon"])),
            speed_ms=float(data["speed_ms"]),
            value=float(data["value"]),
            samples=[float(s) for s in (data.get("samples") or [])],
            extras={str(k): float(v)
                    for k, v in (data.get("extras") or {}).items()},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed REPORT payload: {exc}") from None
