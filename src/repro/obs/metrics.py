"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the single mutable sink every instrumented
layer writes to.  Three deliberate constraints keep it fit for the hot
paths it instruments:

* **Dependency-free and allocation-light** — metric objects are plain
  Python objects created once and cached by name; the steady-state cost
  of ``registry.counter("x").inc()`` is a dict lookup plus an int add
  (both atomic under the GIL, hence lock-free in the common case).
* **No wall-clock anywhere** — snapshots are pure functions of what was
  recorded, so two identical seeded runs produce byte-identical
  ``metrics.json`` files.
* **A true no-op twin** — :class:`NullMetricsRegistry` hands out shared
  do-nothing metric objects, so instrumentation left in a hot loop costs
  one method call when telemetry is disabled and golden outputs stay
  bit-identical (no RNG draw, no state, no I/O).

Histograms use fixed bucket boundaries chosen at creation time (the
first caller wins; later callers with different boundaries get the
existing histogram).  Fixed buckets make merged/streamed aggregation
trivial and keep ``observe`` O(log n_buckets) via bisection.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "quantile_from_snapshot",
]

#: Default histogram boundaries: log-ish spread covering probabilities,
#: latencies in seconds, and small counts alike.  Callers with a known
#: scale should pass explicit ``buckets``.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)


class Counter:
    """A monotonically increasing count (float increments allowed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative by convention)."""
        self.value += amount


class Gauge:
    """A point-in-time value that can move either way."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the value up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the value down by ``amount``."""
        self.value -= amount

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark gauges)."""
        if value > self.value:
            self.value = float(value)


class Histogram:
    """Fixed-boundary bucketed distribution with sum/min/max.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    is the overflow bucket (``> bounds[-1]``).
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample into its bucket (O(log n_buckets))."""
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.total += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def percentile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) from bucket boundaries.

        Returns the upper bound of the bucket containing the quantile
        (the observed max for the overflow bucket) — the usual
        fixed-bucket estimate: exact ordering is gone, the bound is a
        guaranteed over-estimate by at most one bucket width.  The
        extremes are exact: ``q=0`` is the observed min and ``q=1`` the
        observed max, which also clamps every estimate into
        ``[min, max]`` so percentiles are monotone in ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.total == 0:
            return float("nan")
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * self.total
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i < len(self.bounds):
                    # Clamp to the observed range: a one-bucket histogram
                    # (or one whose samples all land below a wide bound)
                    # would otherwise report a bound no sample reached.
                    return min(max(self.bounds[i], self.min), self.max)
                return self.max
        return self.max

    def snapshot(self) -> dict:
        """JSON-ready state: buckets, counts, count/sum/min/max."""
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
        }


def quantile_from_snapshot(snapshot: dict, q: float) -> float:
    """Fixed-bucket q-quantile from a serialized histogram snapshot.

    The file-side twin of :meth:`Histogram.percentile`, with the same
    edge-case contract (NaN when empty, exact min/max at q=0/q=1,
    estimates clamped into the observed range), so reports rendered
    from ``metrics.json``/``snapshots.jsonl`` agree with live queries.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    total = snapshot.get("count", 0)
    if not total:
        return float("nan")
    lo = snapshot.get("min")
    hi = snapshot.get("max")
    lo = float("-inf") if lo is None else lo
    hi = float("inf") if hi is None else hi
    if q == 0.0 and lo > float("-inf"):
        return lo
    if q == 1.0 and hi < float("inf"):
        return hi
    rank = q * total
    seen = 0
    bounds = snapshot.get("buckets", [])
    for i, c in enumerate(snapshot.get("counts", [])):
        seen += c
        if seen >= rank and c:
            if i < len(bounds):
                return min(max(bounds[i], lo), hi)
            return hi if hi < float("inf") else float("nan")
    return hi if hi < float("inf") else float("nan")


class MetricsRegistry:
    """Named metric store; the write side of the telemetry layer."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access (create on first use) ----------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram; ``buckets`` only applies on creation."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS
            )
        return h

    # -- read side -------------------------------------------------------

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0.0

    def gauge_value(self, name: str) -> float:
        """Current value of a gauge (0.0 if never set)."""
        g = self._gauges.get(name)
        return g.value if g is not None else 0.0

    def snapshot(self) -> dict:
        """Deterministic (sorted-key) dict of every metric's state."""
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].value for k in sorted(self._gauges)
            },
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON rendering (byte-stable across identical runs)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    value = 0.0


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    value = 0.0


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    total = 0
    sum = 0.0
    mean = 0.0

    def percentile(self, q: float) -> float:
        return float("nan")

    def snapshot(self) -> dict:
        return {}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Do-nothing registry: every handle is a shared no-op singleton.

    This is what disabled telemetry hands to instrumentation sites, so
    the per-call cost is one attribute lookup and one no-op call — the
    overhead the ``benchmarks/test_perf_microbench.py`` gate bounds.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        """The shared no-op gauge."""
        return _NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> _NullHistogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def counter_value(self, name: str) -> float:
        """Always 0.0 — nothing is recorded when disabled."""
        return 0.0

    def gauge_value(self, name: str) -> float:
        """Always 0.0 — nothing is recorded when disabled."""
        return 0.0

    def snapshot(self) -> dict:
        """The empty snapshot shape (same keys as the real registry)."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON of the (empty) snapshot."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


#: Shared no-op registry instance (stateless, safe to share globally).
NULL_REGISTRY = NullMetricsRegistry()
