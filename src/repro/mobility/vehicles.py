"""Vehicle platforms carrying measurement nodes.

Mirrors the paper's fleet: Madison Metro transit buses (random route per
day, 6am-midnight), two intercity buses on the Madison-Chicago stretch,
and personal cars driven over fixed loops/segments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geo.coords import GeoPoint
from repro.mobility.models import RouteFollower, ScheduledTrip
from repro.mobility.routes import Route
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.rng import derive_seed


class VehicleBase:
    """Common interface: position/speed/is_active at a sim time."""

    def position(self, t: float) -> GeoPoint:  # pragma: no cover - interface
        """Vehicle location at sim time ``t`` (seconds)."""
        raise NotImplementedError

    def speed_ms(self, t: float) -> float:  # pragma: no cover - interface
        """Instantaneous ground speed at ``t``, in m/s."""
        raise NotImplementedError

    def is_active(self, t: float) -> bool:  # pragma: no cover - interface
        """Whether the vehicle is in service (moving or briefly stopped)."""
        raise NotImplementedError


class TransitBus(VehicleBase):
    """A city bus randomly re-assigned to a route each service day.

    The paper: "each particular bus gets randomly assigned to different
    routes each day", so even a small fleet covers most of the city in a
    month.  Route choice is a deterministic hash of (seed, day), making
    any day's assignment reproducible without simulating prior days.
    """

    def __init__(
        self,
        bus_id: int,
        routes: Sequence[Route],
        seed: int = 0,
        mean_speed_kmh: float = 32.0,
    ):
        if not routes:
            raise ValueError("TransitBus needs at least one route")
        self.bus_id = bus_id
        self.routes = list(routes)
        self.seed = derive_seed(seed, f"bus:{bus_id}")
        self.mean_speed_kmh = mean_speed_kmh
        self._followers = {}

    def route_for_day(self, day: int) -> Route:
        """The route this bus serves on ``day`` (deterministic)."""
        rng = np.random.default_rng(derive_seed(self.seed, f"day:{day}"))
        return self.routes[int(rng.integers(0, len(self.routes)))]

    def _follower_for_day(self, day: int) -> RouteFollower:
        f = self._followers.get(day)
        if f is None:
            f = RouteFollower(
                route=self.route_for_day(day),
                mean_speed_kmh=self.mean_speed_kmh,
                speed_spread=0.6,
                stop_fraction=0.18,
                day_start_h=6.0,
                day_end_h=24.0,
                seed=derive_seed(self.seed, f"speed:{day}"),
            )
            if len(self._followers) > 8:
                self._followers.clear()
            self._followers[day] = f
        return f

    def position(self, t: float) -> GeoPoint:
        """Location along the day's assigned route at ``t``."""
        return self._follower_for_day(int(t // SECONDS_PER_DAY)).position(t)

    def speed_ms(self, t: float) -> float:
        """Ground speed at ``t`` (zero while dwelling at stops)."""
        return self._follower_for_day(int(t // SECONDS_PER_DAY)).speed_ms(t)

    def is_active(self, t: float) -> bool:
        """Whether the bus is in service (06:00-24:00 local)."""
        return self._follower_for_day(int(t // SECONDS_PER_DAY)).is_active(t)


class IntercityBus(VehicleBase):
    """A Madison-Chicago coach: one out-and-back round trip daily.

    Departs eastbound at ``depart_hour`` and returns from the far end
    ``layover_h`` hours after arrival.  Inactive while parked.
    """

    def __init__(
        self,
        bus_id: int,
        road: Route,
        depart_hour: float = 8.0,
        layover_h: float = 2.0,
        mean_speed_kmh: float = 90.0,
        seed: int = 0,
    ):
        self.bus_id = bus_id
        self.road = road
        self.depart_hour = depart_hour
        self.layover_h = layover_h
        self.mean_speed_kmh = mean_speed_kmh
        self.seed = derive_seed(seed, f"intercity:{bus_id}")

    def _trips_for_day(self, day: int):
        depart = day * SECONDS_PER_DAY + self.depart_hour * 3600.0
        out = ScheduledTrip(
            self.road,
            depart_t=depart,
            mean_speed_kmh=self.mean_speed_kmh,
            seed=derive_seed(self.seed, f"out:{day}"),
        )
        back_depart = depart + out.duration_s + self.layover_h * 3600.0
        back = ScheduledTrip(
            self.road,
            depart_t=back_depart,
            mean_speed_kmh=self.mean_speed_kmh,
            seed=derive_seed(self.seed, f"back:{day}"),
            reverse=True,
        )
        return out, back

    def position(self, t: float) -> GeoPoint:
        """Location along the corridor (or the endpoint while parked)."""
        out, back = self._trips_for_day(int(t // SECONDS_PER_DAY))
        if back.in_transit(t) or t >= back.depart_t:
            return back.position(t)
        return out.position(t)

    def speed_ms(self, t: float) -> float:
        """Highway speed while in transit; zero during the layover."""
        out, back = self._trips_for_day(int(t // SECONDS_PER_DAY))
        if out.in_transit(t):
            return out.speed_ms(t)
        if back.in_transit(t):
            return back.speed_ms(t)
        return 0.0

    def is_active(self, t: float) -> bool:
        """Whether the coach is on either leg of the day's round trip."""
        out, back = self._trips_for_day(int(t // SECONDS_PER_DAY))
        return out.in_transit(t) or back.in_transit(t)


class Car(VehicleBase):
    """A personal car driving a fixed route during daytime hours."""

    def __init__(
        self,
        car_id: int,
        route: Route,
        mean_speed_kmh: float = 55.0,
        day_start_h: float = 9.0,
        day_end_h: float = 18.0,
        seed: int = 0,
    ):
        self.car_id = car_id
        self._follower = RouteFollower(
            route=route,
            mean_speed_kmh=mean_speed_kmh,
            speed_spread=0.4,
            stop_fraction=0.08,
            day_start_h=day_start_h,
            day_end_h=day_end_h,
            seed=derive_seed(seed, f"car:{car_id}"),
        )

    def position(self, t: float) -> GeoPoint:
        """Location along the fixed route at ``t``."""
        return self._follower.position(t)

    def speed_ms(self, t: float) -> float:
        """Ground speed at ``t``, in m/s."""
        return self._follower.speed_ms(t)

    def is_active(self, t: float) -> bool:
        """Whether ``t`` falls inside the daily driving window."""
        return self._follower.is_active(t)
