"""Client-side driver: run a :class:`ClientAgent` against the service.

This is the measurement half of the paper's deployment picture made
real: the agent still owns the device model, mobility, and radio
channels, but instead of the coordinator calling ``agent.execute()``
in-process, the driver speaks the :mod:`repro.serve.wire` protocol —
HELLO in, POLL with the client's position, execute whatever TASK comes
back, push the REPORT, and retry on RETRY until the server ACKs.

The driver is strictly half-duplex by construction (one outstanding
request per session), so the next frame after a REPORT is always its
ACK or RETRY and the next frame after a POLL is always a TASK or PONG —
no client-side demultiplexing is needed.  A REPORT_BATCH is the one
place two frames can answer one request — a RETRY for the rejected
tail may precede the range ACK_BATCH for the admitted prefix — so
:meth:`ServeSession.send_report_batch` tracks the outstanding seq set
and keeps reading until every report in the batch is settled.

Batching and codec are both opt-in: ``ServeSession(codecs=...)``
offers a codec preference list in HELLO and adopts whatever WELCOME
names; ``ServedClient(batch_size=N)`` coalesces up to N reports per
frame.  The defaults (no codecs key, batch size 1) speak the PR-5 wire
format byte-for-byte.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.clients.agent import ClientAgent
from repro.serve.wire import (
    CODEC_JSON,
    PROTOCOL_VERSION,
    MAX_FRAME_BYTES,
    ProtocolError,
    WireError,
    encode_frame,
    read_frame,
    report_to_wire,
    task_from_wire,
)

__all__ = ["DriverStats", "Redirected", "ServedClient", "ServeSession"]


class Redirected(WireError):
    """The server answered REDIRECT: frame NOT processed, resend to shard X.

    Raised by :meth:`ServeSession.send_report` (a single report carries
    no partial-settlement risk, so an exception is the cleanest
    signal).  ``frame`` is the REDIRECT message — ``shard_id`` /
    ``host`` / ``port`` name the owner and ``shard_map`` carries the
    server's current map so the caller can re-route without another
    round trip.  Batch sends never raise this: see
    :meth:`ServeSession.send_report_batch`, whose summary returns the
    redirected payloads instead (a REDIRECT can arrive after part of
    the original batch was already range-ACKed on a resend round, and
    an exception would lose that accounting).
    """

    code = "redirected"

    def __init__(self, frame: Dict[str, Any]):
        super().__init__(f"redirected to shard {frame.get('shard_id')!r}")
        self.frame = frame


@dataclass
class DriverStats:
    """What one driven session did, for tests and the CLI to report."""

    polls: int = 0
    tasks_received: int = 0
    tasks_refused: int = 0
    reports_sent: int = 0
    reports_acked: int = 0
    reports_rejected: int = 0
    retries: int = 0
    batches_sent: int = 0
    #: Client-observed REPORT->ACK round-trip times (seconds).
    ack_latencies_s: List[float] = field(default_factory=list)


class ServeSession:
    """One open protocol session (shared by driver and loadgen).

    Owns the socket and the request/response discipline; knows nothing
    about how reports are produced.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        networks: List[str],
        max_frame_bytes: int = MAX_FRAME_BYTES,
        codecs: Optional[Sequence[str]] = None,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.networks = networks
        self.max_frame_bytes = max_frame_bytes
        #: Codec preference list offered in HELLO.  ``None`` omits the
        #: key entirely — the PR-5 handshake, which a server answers
        #: with plain JSON.
        self.codecs = list(codecs) if codecs is not None else None
        #: The negotiated session codec; JSON until WELCOME says
        #: otherwise (HELLO/WELCOME themselves are always JSON).
        self.codec = CODEC_JSON
        self.welcome: Optional[Dict[str, Any]] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Client-side batch sequence counter (monotonic per session).
        self._batch_seq = 0

    async def __aenter__(self) -> "ServeSession":
        await self.open()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def open(self) -> Dict[str, Any]:
        """Connect and run the HELLO/WELCOME handshake."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self.codec = CODEC_JSON
        hello: Dict[str, Any] = {
            "type": "HELLO",
            "v": PROTOCOL_VERSION,
            "client_id": self.client_id,
            "networks": self.networks,
        }
        if self.codecs is not None:
            hello["codecs"] = self.codecs
        reply = await self.request(hello)
        if reply.get("type") == "ERROR":
            raise WireError(
                f"server refused session: {reply.get('code')}: "
                f"{reply.get('detail')}"
            )
        if reply.get("type") != "WELCOME":
            raise ProtocolError(f"expected WELCOME, got {reply.get('type')!r}")
        self.welcome = reply
        self.codec = reply.get("codec", CODEC_JSON)
        return reply

    async def _send_frame(self, message: Dict[str, Any]) -> None:
        assert self._writer is not None, "session is not open"
        self._writer.write(
            encode_frame(message, self.max_frame_bytes, self.codec)
        )
        await self._writer.drain()

    async def _read_reply(self) -> Dict[str, Any]:
        reply = await read_frame(self._reader, self.max_frame_bytes,
                                 self.codec)
        if reply is None:
            raise WireError("server closed the connection")
        return reply

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and read the reply frame."""
        await self._send_frame(message)
        return await self._read_reply()

    async def send_report(
        self,
        report_wire: Dict[str, Any],
        max_retries: int = 64,
    ) -> Dict[str, Any]:
        """Push one report, retrying on RETRY until it is ACKed.

        Returns the ACK frame.  Raises :class:`WireError` when the
        server errors the session or the retry budget runs out — a
        report is never silently dropped.
        """
        frame = {"type": "REPORT", "report": report_wire}
        retries = 0
        while True:
            reply = await self.request(frame)
            kind = reply.get("type")
            if kind == "ACK":
                reply["_retries"] = retries
                return reply
            if kind == "RETRY":
                if retries >= max_retries:
                    raise WireError(
                        f"report not accepted after {retries} retries"
                    )
                retries += 1
                await asyncio.sleep(float(reply.get("retry_after_s", 0.05)))
                continue
            if kind == "REDIRECT":
                raise Redirected(reply)
            if kind == "ERROR":
                raise WireError(
                    f"server error: {reply.get('code')}: "
                    f"{reply.get('detail')}"
                )
            raise ProtocolError(f"expected ACK/RETRY, got {kind!r}")

    async def send_report_batch(
        self,
        reports_wire: Sequence[Dict[str, Any]],
        max_retries: int = 64,
    ) -> Dict[str, Any]:
        """Push many reports in one frame, resending until all settle.

        Sends one REPORT_BATCH and keeps reading until every report in
        it is covered by an ACK_BATCH (admitted, possibly rejected by
        the validator), a RETRY (the backpressured tail — resent as a
        fresh, smaller batch after ``retry_after_s``), or a REDIRECT (a
        shard that does not own the batch's zones; the whole frame is
        unprocessed).  Returns a summary dict with ``accepted`` /
        ``rejected`` report counts and ``_retries``; redirected
        payloads come back under ``"redirected"`` (with the REDIRECT
        frame under ``"redirect"``) for the caller to re-route — they
        are NOT resent here, because this session points at the wrong
        shard by definition.  Raises :class:`WireError` when the retry
        budget runs out or the server errors the session.
        """
        if not reports_wire:
            raise ValueError("empty report batch")
        pending = list(reports_wire)
        retries = 0
        accepted = 0
        rejected = 0
        batches = 0
        redirected: List[Dict[str, Any]] = []
        redirect_frame: Optional[Dict[str, Any]] = None
        while pending:
            seq_lo = self._batch_seq
            self._batch_seq += len(pending)
            await self._send_frame({
                "type": "REPORT_BATCH",
                "seq_lo": seq_lo,
                "reports": pending,
            })
            batches += 1
            #: Seqs of this batch not yet settled by ACK_BATCH/RETRY.
            outstanding = set(range(seq_lo, seq_lo + len(pending)))
            resend: List[Dict[str, Any]] = []
            retry_after_s = 0.05
            while outstanding:
                reply = await self._read_reply()
                kind = reply.get("type")
                if kind == "ACK_BATCH":
                    lo, hi = int(reply["seq_lo"]), int(reply["seq_hi"])
                    outstanding.difference_update(range(lo, hi + 1))
                    n_rejected = len(reply.get("rejected_seqs") or ())
                    accepted += (hi - lo + 1) - n_rejected
                    rejected += n_rejected
                elif kind == "RETRY":
                    lo, hi = int(reply["seq_lo"]), int(reply["seq_hi"])
                    outstanding.difference_update(range(lo, hi + 1))
                    resend.extend(pending[lo - seq_lo:hi - seq_lo + 1])
                    retry_after_s = float(
                        reply.get("retry_after_s", retry_after_s)
                    )
                elif kind == "REDIRECT":
                    #: The whole frame was refused unprocessed; hand the
                    #: payloads back to the caller for re-routing.
                    lo, hi = int(reply["seq_lo"]), int(reply["seq_hi"])
                    outstanding.difference_update(range(lo, hi + 1))
                    redirected.extend(
                        pending[lo - seq_lo:hi - seq_lo + 1]
                    )
                    redirect_frame = reply
                elif kind == "ERROR":
                    raise WireError(
                        f"server error: {reply.get('code')}: "
                        f"{reply.get('detail')}"
                    )
                else:
                    raise ProtocolError(
                        f"expected ACK_BATCH/RETRY, got {kind!r}"
                    )
            if resend:
                if retries >= max_retries:
                    raise WireError(
                        f"{len(resend)} report(s) not accepted after "
                        f"{retries} retries"
                    )
                retries += 1
                await asyncio.sleep(retry_after_s)
            pending = resend
        summary: Dict[str, Any] = {
            "accepted": accepted,
            "rejected": rejected,
            "_retries": retries,
            "_batches": batches,
        }
        if redirected:
            summary["redirected"] = redirected
            summary["redirect"] = redirect_frame
        return summary

    async def stats(self) -> Dict[str, Any]:
        """Fetch the server's STATS_REPLY."""
        reply = await self.request({"type": "STATS"})
        if reply.get("type") != "STATS_REPLY":
            raise ProtocolError(
                f"expected STATS_REPLY, got {reply.get('type')!r}"
            )
        return reply

    async def close(self) -> None:
        """Orderly BYE (best effort) and socket teardown."""
        if self._writer is None:
            return
        try:
            self._writer.write(encode_frame({"type": "BYE"},
                                            self.max_frame_bytes))
            await self._writer.drain()
            await read_frame(self._reader, self.max_frame_bytes)
        except (WireError, ConnectionError, RuntimeError):
            pass
        finally:
            try:
                self._writer.close()
            except Exception:
                pass
            self._writer = None
            self._reader = None


class ServedClient:
    """Drive one existing :class:`ClientAgent` over the wire.

    ``batch_size`` > 1 turns on report coalescing: completed reports
    accumulate in a client-side buffer and go out as one REPORT_BATCH
    frame when the buffer fills (and at session end, so nothing is ever
    left behind).  ``codecs`` is the HELLO codec preference list
    (``None`` — the default — negotiates nothing and speaks PR-5 JSON).
    """

    def __init__(
        self,
        agent: ClientAgent,
        host: str,
        port: int,
        poll_interval_s: float = 60.0,
        batch_size: int = 1,
        codecs: Optional[Sequence[str]] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.agent = agent
        self.poll_interval_s = poll_interval_s
        self.batch_size = int(batch_size)
        self.session = ServeSession(
            host,
            port,
            client_id=agent.client_id,
            networks=[n.value for n in sorted(
                agent.device.networks, key=lambda n: n.value
            )],
            codecs=codecs,
        )
        self.stats = DriverStats()
        self._buffer: List[Dict[str, Any]] = []

    async def run(self, n_polls: int, start_s: float = 0.0) -> DriverStats:
        """Poll/execute/report for ``n_polls`` sim ticks, then BYE."""
        loop_time = asyncio.get_event_loop().time
        async with self.session:
            for i in range(n_polls):
                t = start_s + i * self.poll_interval_s
                await self._poll_once(t, loop_time)
            await self._flush(loop_time)
        return self.stats

    async def _flush(self, loop_time) -> None:
        """Send the coalescing buffer as one batch (no-op when empty)."""
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        sent_at = loop_time()
        ack = await self.session.send_report_batch(batch)
        latency = loop_time() - sent_at
        self.stats.ack_latencies_s.extend([latency] * len(batch))
        self.stats.batches_sent += int(ack.get("_batches", 1))
        self.stats.retries += int(ack.get("_retries", 0))
        self.stats.reports_acked += int(ack.get("accepted", 0))
        self.stats.reports_rejected += int(ack.get("rejected", 0))

    async def _poll_once(self, t: float, loop_time) -> None:
        point = self.agent.position(t)
        self.stats.polls += 1
        reply = await self.session.request({
            "type": "POLL",
            "t": t,
            "lat": point.lat,
            "lon": point.lon,
            "seq": self.stats.polls,
        })
        kind = reply.get("type")
        if kind == "PONG":
            return
        if kind == "ERROR":
            raise WireError(
                f"server error: {reply.get('code')}: {reply.get('detail')}"
            )
        if kind != "TASK":
            raise ProtocolError(f"expected TASK/PONG, got {kind!r}")
        self.stats.tasks_received += 1
        task = task_from_wire(reply["task"])
        report = self.agent.execute(task, t)
        if report is None:
            self.stats.tasks_refused += 1
            return
        self.stats.reports_sent += 1
        if self.batch_size > 1:
            self._buffer.append(report_to_wire(report))
            if len(self._buffer) >= self.batch_size:
                await self._flush(loop_time)
            return
        sent_at = loop_time()
        ack = await self.session.send_report(report_to_wire(report))
        self.stats.ack_latencies_s.append(loop_time() - sent_at)
        self.stats.retries += int(ack.get("_retries", 0))
        if ack.get("accepted"):
            self.stats.reports_acked += 1
        else:
            self.stats.reports_rejected += 1
