"""Tests for base-station placement."""

import numpy as np
import pytest

from repro.geo.regions import madison_chicago_road, madison_study_area
from repro.radio.basestation import place_along_road, place_base_stations


class TestCityPlacement:
    def test_count(self, rng):
        area = madison_study_area()
        stations = place_base_stations(area.anchor, area.radius_m, 12, rng)
        assert len(stations) == 12

    def test_all_within_area(self, rng):
        area = madison_study_area()
        stations = place_base_stations(area.anchor, area.radius_m, 30, rng)
        for s in stations:
            assert area.anchor.distance_to(s.location) <= area.radius_m + 1.0

    def test_deterministic_given_rng(self):
        area = madison_study_area()
        a = place_base_stations(area.anchor, area.radius_m, 10, np.random.default_rng(3))
        b = place_base_stations(area.anchor, area.radius_m, 10, np.random.default_rng(3))
        assert [s.location for s in a] == [s.location for s in b]

    def test_capacity_scales_bounded(self, rng):
        area = madison_study_area()
        for s in place_base_stations(area.anchor, area.radius_m, 50, rng):
            assert 0.75 <= s.capacity_scale <= 1.25

    def test_zero_count_rejected(self, rng):
        with pytest.raises(ValueError):
            place_base_stations(madison_study_area().anchor, 1000.0, 0, rng)


class TestRoadPlacement:
    def test_towers_near_corridor(self, rng):
        road = madison_chicago_road()
        stations = place_along_road(road.waypoints, 10_000.0, rng)
        assert len(stations) >= 20
        anchors = road.sample_every(1000.0)
        for s in stations:
            nearest = min(s.location.distance_to(a) for a in anchors)
            assert nearest <= 1500.0

    def test_site_ids_offset(self, rng):
        road = madison_chicago_road()
        stations = place_along_road(road.waypoints, 20_000.0, rng, start_site_id=500)
        assert all(s.site_id >= 500 for s in stations)
