"""Dataset workflow: generate -> save -> reload -> identical analysis."""

import numpy as np
import pytest

from repro.analysis.figures import zone_throughput_map
from repro.clients.protocol import MeasurementType
from repro.datasets.generator import DatasetGenerator
from repro.datasets.io import read_jsonl, write_csv, write_jsonl
from repro.geo.zones import ZoneGrid
from repro.radio.technology import NetworkId


@pytest.fixture(scope="module")
def small_trace(landscape):
    gen = DatasetGenerator(landscape, seed=3)
    return gen.standalone(days=1, n_buses=2, n_routes=4, interval_s=300)


class TestRoundTripAnalysis:
    def test_reloaded_trace_gives_identical_statistics(
        self, small_trace, landscape, tmp_path
    ):
        path = tmp_path / "standalone.jsonl"
        write_jsonl(small_trace, path)
        reloaded = list(read_jsonl(path))
        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        orig = zone_throughput_map(small_trace, grid, NetworkId.NET_B, min_samples=5)
        back = zone_throughput_map(reloaded, grid, NetworkId.NET_B, min_samples=5)
        assert len(orig) == len(back)
        for a, b in zip(orig, back):
            assert a.zone_id == b.zone_id
            assert a.mean_bps == pytest.approx(b.mean_bps, rel=1e-12)

    def test_csv_preserves_values(self, small_trace, tmp_path):
        import csv

        path = tmp_path / "standalone.csv"
        count = write_csv(small_trace, path)
        assert count == len(small_trace)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == len(small_trace)
        assert float(rows[0]["value"]) == pytest.approx(small_trace[0].value, rel=1e-9)

    def test_trace_values_physical(self, small_trace):
        for rec in small_trace:
            if rec.kind is MeasurementType.TCP_DOWNLOAD:
                assert 1e3 < rec.value < 3.2e6
            elif rec.kind is MeasurementType.PING and not rec.failed:
                assert 0.03 < rec.value < 2.0
