"""Tests for cross-category normalization."""

import numpy as np
import pytest

from repro.clients.device import DeviceCategory
from repro.clients.normalize import CategoryNormalizer, CategoryObservation
from repro.radio.technology import NetworkId

LAPTOP = DeviceCategory.LAPTOP_USB
PHONE = DeviceCategory.PHONE
SBC = DeviceCategory.SBC_PCMCIA


def _obs(category, zone, mean, net=NetworkId.NET_B, n=10):
    return CategoryObservation(
        category=category, zone_id=zone, network=net, mean_bps=mean, n_samples=n
    )


class TestAggregate:
    def test_grouping_and_min_samples(self):
        reports = [(PHONE, (0, 0), NetworkId.NET_B, 1e6)] * 6
        reports += [(LAPTOP, (0, 0), NetworkId.NET_B, 1.2e6)] * 2  # too few
        observations = CategoryNormalizer.aggregate(reports, min_samples=5)
        assert len(observations) == 1
        assert observations[0].category is PHONE
        assert observations[0].mean_bps == pytest.approx(1e6)

    def test_nan_ignored(self):
        reports = [(PHONE, (0, 0), NetworkId.NET_B, float("nan"))] * 10
        assert CategoryNormalizer.aggregate(reports, min_samples=1) == []


class TestFit:
    def test_learns_median_ratio(self):
        normalizer = CategoryNormalizer(reference=LAPTOP)
        observations = []
        for i, ratio in enumerate([0.78, 0.80, 0.82, 0.79, 0.95]):
            base = 1e6 * (1 + 0.1 * i)
            observations.append(_obs(LAPTOP, (i, 0), base))
            observations.append(_obs(PHONE, (i, 0), base * ratio))
        normalizer.fit(observations)
        assert normalizer.factor(PHONE) == pytest.approx(0.80, abs=0.02)
        assert normalizer.support(PHONE) == 5

    def test_reference_factor_is_one(self):
        assert CategoryNormalizer().factor(LAPTOP) == 1.0

    def test_insufficient_cells_not_learned(self):
        normalizer = CategoryNormalizer()
        observations = [
            _obs(LAPTOP, (0, 0), 1e6),
            _obs(PHONE, (0, 0), 0.8e6),
        ]
        normalizer.fit(observations, min_shared_cells=3)
        with pytest.raises(KeyError):
            normalizer.factor(PHONE)

    def test_cells_without_reference_skipped(self):
        normalizer = CategoryNormalizer()
        observations = [_obs(PHONE, (i, 0), 1e6) for i in range(5)]
        normalizer.fit(observations)
        with pytest.raises(KeyError):
            normalizer.factor(PHONE)


class TestNormalize:
    def _fitted(self):
        normalizer = CategoryNormalizer()
        observations = []
        for i in range(4):
            observations.append(_obs(LAPTOP, (i, 0), 1e6))
            observations.append(_obs(PHONE, (i, 0), 8e5))
        normalizer.fit(observations)
        return normalizer

    def test_normalize_value(self):
        normalizer = self._fitted()
        assert normalizer.normalize(PHONE, 8e5) == pytest.approx(1e6)

    def test_normalize_samples(self):
        normalizer = self._fitted()
        out = normalizer.normalize_samples(PHONE, [8e5, 4e5])
        assert out == pytest.approx([1e6, 5e5])

    def test_end_to_end_with_simulated_devices(self, landscape):
        """Phone samples normalized into the laptop frame become
        composable — the paper's future-work scenario."""
        from repro.clients.agent import ClientAgent
        from repro.clients.device import Device
        from repro.clients.protocol import MeasurementTask, MeasurementType
        from repro.geo.zones import ZoneGrid
        from repro.mobility.models import StaticPosition

        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        reports = []
        agents = {}
        for category, label in ((LAPTOP, "lap"), (PHONE, "ph")):
            values = []
            for zone_i in range(3):
                point = landscape.study_area.anchor.offset(900.0 * zone_i, 0.0)
                device = Device(f"{label}{zone_i}", category, [NetworkId.NET_B], seed=3)
                agent = ClientAgent(
                    f"{label}{zone_i}", device, StaticPosition(point), landscape, seed=4
                )
                for k in range(8):
                    report = agent.execute(
                        MeasurementTask(
                            task_id=k, network=NetworkId.NET_B,
                            kind=MeasurementType.UDP_TRAIN,
                            params={"n_packets": 60},
                        ),
                        500.0 + 120.0 * k,
                    )
                    reports.append(
                        (category, grid.zone_id_for(report.point),
                         NetworkId.NET_B, report.value)
                    )
        normalizer = CategoryNormalizer(reference=LAPTOP)
        normalizer.fit(CategoryNormalizer.aggregate(reports, min_samples=5))
        # The learned factor reflects the phone's weaker front-end (~0.8).
        assert 0.65 <= normalizer.factor(PHONE) <= 0.95
