"""Table 4: standard deviation at coarse (30 min) vs fine (10 s) bins.

The paper's point: fine-timescale variation is several times larger
than coarse-timescale variation for every network and metric, which
"effectively rules out the use of small and infrequent measurements" —
motivating per-epoch sample budgets instead.
"""

import math

import numpy as np

from repro.analysis.tables import TextTable
from repro.clients.protocol import MeasurementType
from repro.radio.technology import NetworkId


def _std_at_binning(records, kind, net, bin_s):
    bins = {}
    for r in records:
        if r.kind is not kind or r.network is not net or math.isnan(r.value):
            continue
        bins.setdefault(int(r.time_s // bin_s), []).append(r.value)
    means = [np.mean(v) for v in bins.values()]
    return float(np.std(means)) if len(means) >= 2 else float("nan")


def _build(spot_traces):
    out = {}
    for region, nets in (
        ("WI", [NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C]),
        ("NJ", [NetworkId.NET_B, NetworkId.NET_C]),
    ):
        records = spot_traces[region.lower()]
        for net in nets:
            for kind, label in (
                (MeasurementType.TCP_DOWNLOAD, "TCP"),
                (MeasurementType.UDP_TRAIN, "UDP"),
            ):
                long_std = _std_at_binning(records, kind, net, 1800.0)
                # Samples arrive every ~40 s per (net, kind); the "short"
                # timescale bins individual samples (the paper's 10 s).
                short_std = _std_at_binning(records, kind, net, 60.0)
                out[(region, net, label)] = (long_std, short_std)
    return out


def test_table4_long_vs_short_timescale(spot_traces, benchmark):
    rows = benchmark.pedantic(_build, args=(spot_traces,), rounds=1, iterations=1)

    table = TextTable(
        ["net-region", "metric", "std 30min (Kbps)", "std fine (Kbps)", "ratio"],
        formats=["", "", ".0f", ".0f", ".2f"],
    )
    ratios = []
    for (region, net, label), (long_std, short_std) in rows.items():
        ratio = short_std / long_std if long_std > 0 else float("inf")
        ratios.append(ratio)
        table.add_row(
            f"{net.value}-{region}", label, long_std / 1e3, short_std / 1e3, ratio
        )
    print("\nTable 4 — std of coarse (30 min) vs fine time bins")
    print(table.render())

    # Shape: fine-timescale std exceeds coarse-timescale std for every
    # network and metric — typically by 2x or more in the paper.
    assert all(r > 1.2 for r in ratios)
    assert np.mean(ratios) > 1.8
