"""Cross-category normalization of client measurements.

The paper keeps device categories separate because "a mobile phone ...
has a more constrained radio front-end and antenna system than a USB
modem" and leaves normalization across categories as future work
(section 3.3).  This module implements that extension: learn a stable
per-category scaling factor from co-located measurements (zones where
both categories reported), then map one category's throughput samples
into another's frame so their pools become composable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.clients.device import DeviceCategory
from repro.clients.protocol import MeasurementType
from repro.geo.zones import ZoneGrid, ZoneId
from repro.radio.technology import NetworkId


@dataclass(frozen=True)
class CategoryObservation:
    """One aggregated observation: a category's zone-mean throughput."""

    category: DeviceCategory
    zone_id: ZoneId
    network: NetworkId
    mean_bps: float
    n_samples: int


class CategoryNormalizer:
    """Learns scale factors between device categories.

    The factor for (src -> ref) is the median over shared (zone,
    network) cells of mean_src / mean_ref.  Median, not mean: a few
    zones with odd coverage must not skew the hardware ratio.
    """

    def __init__(self, reference: DeviceCategory = DeviceCategory.LAPTOP_USB):
        self.reference = reference
        self._factors: Dict[DeviceCategory, float] = {reference: 1.0}
        self._support: Dict[DeviceCategory, int] = {}

    @staticmethod
    def aggregate(
        reports: Iterable[Tuple[DeviceCategory, ZoneId, NetworkId, float]],
        min_samples: int = 5,
    ) -> List[CategoryObservation]:
        """Aggregate raw (category, zone, network, value) tuples."""
        sums: Dict[Tuple[DeviceCategory, ZoneId, NetworkId], List[float]] = {}
        for category, zone, net, value in reports:
            if math.isnan(value):
                continue
            sums.setdefault((category, zone, net), []).append(value)
        out = []
        for (category, zone, net), values in sums.items():
            if len(values) < min_samples:
                continue
            out.append(
                CategoryObservation(
                    category=category, zone_id=zone, network=net,
                    mean_bps=float(np.mean(values)), n_samples=len(values),
                )
            )
        return out

    def fit(self, observations: Iterable[CategoryObservation], min_shared_cells: int = 3) -> None:
        """Learn factors from co-located observations.

        Categories sharing fewer than ``min_shared_cells`` (zone,
        network) cells with the reference stay unknown (factor lookup
        raises for them).
        """
        by_cell: Dict[Tuple[ZoneId, NetworkId], Dict[DeviceCategory, float]] = {}
        for obs in observations:
            by_cell.setdefault((obs.zone_id, obs.network), {})[obs.category] = obs.mean_bps

        ratios: Dict[DeviceCategory, List[float]] = {}
        for cell_values in by_cell.values():
            ref_value = cell_values.get(self.reference)
            if not ref_value:
                continue
            for category, value in cell_values.items():
                if category is self.reference:
                    continue
                ratios.setdefault(category, []).append(value / ref_value)

        for category, rs in ratios.items():
            if len(rs) >= min_shared_cells:
                self._factors[category] = float(np.median(rs))
                self._support[category] = len(rs)

    def factor(self, category: DeviceCategory) -> float:
        """Learned mean-throughput ratio category/reference."""
        try:
            return self._factors[category]
        except KeyError:
            raise KeyError(
                f"no normalization factor learned for {category.value}"
            ) from None

    def support(self, category: DeviceCategory) -> int:
        """Number of shared cells the factor was learned from."""
        return self._support.get(category, 0)

    def known_categories(self) -> List[DeviceCategory]:
        return list(self._factors)

    def normalize(self, category: DeviceCategory, value_bps: float) -> float:
        """Map a throughput value into the reference category's frame."""
        return value_bps / self.factor(category)

    def normalize_samples(
        self, category: DeviceCategory, samples: Iterable[float]
    ) -> List[float]:
        """Normalize a sample list (for pooled NKLD analysis)."""
        f = self.factor(category)
        return [s / f for s in samples]
