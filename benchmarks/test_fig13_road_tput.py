"""Figure 13: per-zone TCP throughput along the road, three carriers.

The paper plots each carrier's average TCP throughput across ~45 zones
of the 20 km stretch: the lines cross repeatedly, with zone-level gaps
of 30-42% between the best and second-best carrier at specific zones.
"""

import math

import numpy as np

from repro.analysis.tables import TextTable
from repro.clients.protocol import MeasurementType
from repro.geo.zones import ZoneGrid
from repro.radio.technology import NetworkId

ALL = [NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C]


def _zone_means(records, grid):
    by_zone = {}
    for r in records:
        if r.kind is not MeasurementType.TCP_DOWNLOAD or math.isnan(r.value):
            continue
        by_zone.setdefault(grid.zone_id_for(r.point), {}).setdefault(
            r.network, []
        ).append(r.value)
    out = {}
    for zone, per_net in by_zone.items():
        if all(len(per_net.get(net, [])) >= 10 for net in ALL):
            out[zone] = {net: float(np.mean(per_net[net])) for net in ALL}
    return out


def test_fig13_road_throughput_profile(short_segment_trace, landscape, benchmark):
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
    zone_means = benchmark.pedantic(
        _zone_means, args=(short_segment_trace, grid), rounds=1, iterations=1
    )

    zones = sorted(zone_means)
    table = TextTable(
        ["zone #", "NetA Kbps", "NetB Kbps", "NetC Kbps", "best", "lead (%)"],
        formats=["", ".0f", ".0f", ".0f", "", ".0f"],
    )
    winners = []
    leads = []
    for i, zone in enumerate(zones):
        means = zone_means[zone]
        ordered = sorted(means.items(), key=lambda kv: kv[1], reverse=True)
        lead = (ordered[0][1] - ordered[1][1]) / ordered[1][1]
        winners.append(ordered[0][0])
        leads.append(lead)
        table.add_row(
            i, means[NetworkId.NET_A] / 1e3, means[NetworkId.NET_B] / 1e3,
            means[NetworkId.NET_C] / 1e3, ordered[0][0].value, lead * 100.0,
        )
    print("\nFig 13 — per-zone TCP throughput along the 20 km stretch")
    print(table.render())

    # Shape: ~40+ zones; the winner changes along the road; at some
    # zones the best carrier leads by >=25% (paper: 30-42%).
    assert len(zones) >= 30
    assert len(set(winners)) >= 2
    assert max(leads) >= 0.25
    # Each carrier's profile varies along the road (coverage structure).
    for net in ALL:
        series = np.array([zone_means[z][net] for z in zones])
        assert series.max() > 1.3 * series.min()
