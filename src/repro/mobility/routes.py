"""Route library.

A :class:`Route` is a named polyline with a precomputed arclength index
so position-at-distance lookups are O(log n).  City bus routes are
generated as radial out-and-back lines plus cross-town chords over the
study area — enough variety that a handful of buses covers most zones
within a month, as the paper observes of Madison Metro.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.geo.coords import (
    GeoPoint,
    destination_point,
    haversine_m,
    interpolate,
    resample_path,
)
from repro.geo.regions import StudyArea


@dataclass
class Route:
    """A drivable polyline with arclength indexing."""

    name: str
    waypoints: List[GeoPoint]
    _cum_m: List[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a route needs at least two waypoints")
        cum = [0.0]
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            cum.append(cum[-1] + haversine_m(a, b))
        self._cum_m = cum

    @property
    def length_m(self) -> float:
        return self._cum_m[-1]

    def point_at(self, distance_m: float) -> GeoPoint:
        """Point at arclength ``distance_m`` (clamped to [0, length])."""
        d = min(max(distance_m, 0.0), self.length_m)
        i = bisect.bisect_right(self._cum_m, d) - 1
        if i >= len(self.waypoints) - 1:
            return self.waypoints[-1]
        seg_len = self._cum_m[i + 1] - self._cum_m[i]
        frac = 0.0 if seg_len == 0 else (d - self._cum_m[i]) / seg_len
        return interpolate(self.waypoints[i], self.waypoints[i + 1], frac)

    def sample_every(self, spacing_m: float) -> List[GeoPoint]:
        """Uniformly spaced points along the route."""
        return resample_path(self.waypoints, spacing_m)


def city_bus_routes(
    area: StudyArea, count: int = 8, waypoint_spacing_m: float = 150.0
) -> List[Route]:
    """Generate ``count`` deterministic bus routes over a study area.

    Odd-indexed routes are radial spokes through the center; even-indexed
    ones are chords offset from the center — together they pass through
    both core and peripheral zones.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    routes: List[Route] = []
    for i in range(count):
        bearing = (180.0 / count) * i
        if i % 2 == 0:
            # Radial spoke: edge-to-edge through the center.
            a = destination_point(area.anchor, bearing, area.radius_m * 0.92)
            b = destination_point(area.anchor, bearing + 180.0, area.radius_m * 0.92)
            mid = area.anchor
        else:
            # Chord displaced sideways from the center.
            offset = destination_point(
                area.anchor, bearing + 90.0, area.radius_m * 0.45
            )
            a = destination_point(offset, bearing, area.radius_m * 0.75)
            b = destination_point(offset, bearing + 180.0, area.radius_m * 0.75)
            mid = offset
        # Two-leg polyline through the midpoint with a slight dogleg so
        # routes are not perfectly straight lines.
        dog = destination_point(mid, bearing + 35.0, area.radius_m * 0.08)
        raw = [a, dog, b]
        routes.append(
            Route(name=f"route-{i}", waypoints=resample_path(raw, waypoint_spacing_m))
        )
    return routes


def loop_route(center: GeoPoint, radius_m: float, name: str = "loop", points: int = 24) -> Route:
    """A closed circular loop (the Proximate datasets' driving pattern)."""
    if radius_m <= 0:
        raise ValueError("radius_m must be positive")
    pts = [
        destination_point(center, 360.0 * k / points, radius_m)
        for k in range(points)
    ]
    pts.append(pts[0])
    return Route(name=name, waypoints=pts)
