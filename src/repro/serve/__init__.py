"""The coordinator as a network service.

The in-process simulation calls :class:`MeasurementCoordinator` methods
directly; this package puts the same coordinator behind an asyncio TCP
service speaking a versioned, length-prefixed JSON protocol
(:mod:`repro.serve.wire`), with durable WAL-backed ingest
(:mod:`repro.serve.wal`), a session layer with heartbeats and
backpressure (:mod:`repro.serve.server`), a client driver that runs
existing agents over the wire (:mod:`repro.serve.driver`), and a
load-generation harness (:mod:`repro.serve.loadgen`).

Nothing here is imported by the simulation path — goldens are
bit-identical when the service is unused.
"""

from repro.serve.driver import DriverStats, ServedClient, ServeSession
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenResult,
    run_loadgen,
    run_loadgen_sync,
)
from repro.serve.server import (
    CoordinatorServer,
    ServeConfig,
    build_coordinator,
    install_uvloop,
    replay_wal,
)
from repro.serve.wal import WalCorruptionError, WriteAheadLog
from repro.serve.wire import (
    CODEC_BINARY,
    CODEC_JSON,
    FrameTooLargeError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    SUPPORTED_CODECS,
    TruncatedFrameError,
    VersionMismatchError,
    WireError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "CODEC_JSON",
    "CODEC_BINARY",
    "SUPPORTED_CODECS",
    "WireError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "ProtocolError",
    "VersionMismatchError",
    "WriteAheadLog",
    "WalCorruptionError",
    "CoordinatorServer",
    "ServeConfig",
    "build_coordinator",
    "install_uvloop",
    "replay_wal",
    "ServeSession",
    "ServedClient",
    "DriverStats",
    "LoadgenConfig",
    "LoadgenResult",
    "run_loadgen",
    "run_loadgen_sync",
]
