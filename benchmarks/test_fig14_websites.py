"""Figure 14: per-website delays for multi-sim and MAR.

Depth-1 fetches of cnn / microsoft / youtube / amazon while driving:
WiScape-informed selection improves every site over the fixed-carrier
alternatives (multi-sim, panel a) and over round-robin striping (MAR,
panel b); the paper sees 13-37% improvements depending on site.
"""

import numpy as np

from repro.analysis.tables import TextTable
from repro.apps.mar import MarGateway
from repro.apps.multisim import (
    BestZoneSelector,
    FixedSelector,
    MultiSimClient,
    ZonePerformanceMap,
)
from repro.apps.webworkload import WELL_KNOWN_SITES, website_bundle
from repro.geo.regions import short_segment_road
from repro.geo.zones import ZoneGrid
from repro.mobility.routes import Route
from repro.mobility.vehicles import Car
from repro.radio.technology import NetworkId

ALL = [NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C]
REPEATS = 6


def _run(landscape, short_segment_trace):
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
    pmap = ZonePerformanceMap.from_records(short_segment_trace, grid)
    route = Route(name="seg", waypoints=short_segment_road().waypoints)

    multisim = {}
    mar = {}
    # The paper runs the car over the segment multiple times per site;
    # spreading fetches over start offsets covers different road zones.
    starts = [10.0 * 3600.0 + k * 300.0 for k in range(REPEATS)]
    for site in WELL_KNOWN_SITES:
        pages = website_bundle(site)

        site_ms = {}
        for name, make_sel in [
            ("WiScape", lambda: BestZoneSelector(pmap, ALL)),
            ("NetA", lambda: FixedSelector(NetworkId.NET_A)),
            ("NetB", lambda: FixedSelector(NetworkId.NET_B)),
            ("NetC", lambda: FixedSelector(NetworkId.NET_C)),
        ]:
            car = Car(car_id=10, route=route, seed=500)
            client = MultiSimClient(landscape, car, grid, ALL, seed=600)
            selector = make_sel()
            total = sum(
                client.fetch(pages, selector, start).total_duration_s
                for start in starts
            )
            site_ms[name] = total / REPEATS
        multisim[site] = site_ms

        rr_total = ws_total = 0.0
        for start in starts:
            car = Car(car_id=11, route=route, seed=700)
            gw = MarGateway(landscape, car, grid, ALL, seed=800)
            rr_total += gw.run_round_robin(pages, start).total_duration_s
            car2 = Car(car_id=11, route=route, seed=700)
            gw2 = MarGateway(landscape, car2, grid, ALL, seed=800)
            ws_total += gw2.run_wiscape(pages, start, pmap).total_duration_s
        mar[site] = {"MAR-RR": rr_total / REPEATS, "MAR-WiScape": ws_total / REPEATS}
    return multisim, mar


def test_fig14_well_known_websites(landscape, short_segment_trace, benchmark):
    multisim, mar = benchmark.pedantic(
        _run, args=(landscape, short_segment_trace), rounds=1, iterations=1
    )

    table_a = TextTable(
        ["site", "WiScape s", "NetA s", "NetB s", "NetC s", "impr vs best fixed (%)"],
        formats=["", ".1f", ".1f", ".1f", ".1f", ".0f"],
    )
    improvements_a = {}
    for site, times in multisim.items():
        best_fixed = min(times[n] for n in ("NetA", "NetB", "NetC"))
        improvements_a[site] = 1.0 - times["WiScape"] / best_fixed
        table_a.add_row(
            site, times["WiScape"], times["NetA"], times["NetB"], times["NetC"],
            improvements_a[site] * 100.0,
        )
    print("\nFig 14a — multi-sim per-site delay (one bundle fetch)")
    print(table_a.render())

    table_b = TextTable(
        ["site", "MAR-WiScape s", "MAR-RR s", "impr (%)"],
        formats=["", ".1f", ".1f", ".0f"],
    )
    improvements_b = {}
    for site, times in mar.items():
        improvements_b[site] = 1.0 - times["MAR-WiScape"] / times["MAR-RR"]
        table_b.add_row(
            site, times["MAR-WiScape"], times["MAR-RR"], improvements_b[site] * 100.0
        )
    print("Fig 14b — MAR per-site delay (one bundle fetch)")
    print(table_b.render())

    # Shape: WiScape never loses to the best fixed carrier by more than
    # noise, and wins on average; MAR-WiScape beats MAR-RR on average.
    assert np.mean(list(improvements_a.values())) > 0.0
    assert min(improvements_a.values()) > -0.10
    assert np.mean(list(improvements_b.values())) > 0.0
