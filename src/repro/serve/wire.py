"""The coordinator service's versioned, length-prefixed wire protocol.

Every frame on the control channel is a 4-byte big-endian unsigned
length prefix followed by exactly that many bytes of payload, encoded
by the session's negotiated **codec**:

* ``json`` (the default, and the only pre-negotiation encoding) — one
  flat UTF-8 JSON object whose ``"type"`` key names the frame.  The
  encoding is canonical (sorted keys, compact separators), so a frame's
  bytes are a pure function of its message dict, and Python's
  repr-based float serialization round-trips every
  ``MeasurementReport`` field exactly — the property the WAL-replay
  byte-identity guarantee rests on.  ``NaN`` is allowed (a failed
  ping's primary value is NaN); both ends are this module, so the
  non-strict JSON extension is safe.
* ``binary`` (opt-in, negotiated in HELLO/WELCOME) — a tagged payload.
  REPORT_BATCH frames whose reports conform to the canonical report
  schema are struct-packed (IEEE-754 doubles, so every float — NaN
  and infinities included — round-trips bit-exactly); every other
  message rides as canonical JSON behind a one-byte tag.  Decoding a
  binary payload reproduces the sender's message dict *exactly* (same
  keys, same value types), which is what keeps WAL bytes identical
  across codecs for the same report stream.

HELLO and WELCOME are always JSON — a client offers ``"codecs"`` in
HELLO, the server picks one and names it in WELCOME, and both ends
switch for every subsequent frame (see DESIGN.md §10 for the
negotiation state machine).

Frame types (see DESIGN.md §10 for the session state machine):

============  ======================  =====================================
type          direction               purpose
============  ======================  =====================================
HELLO         client -> server        open a session (protocol ``v``, codecs)
WELCOME       server -> client        session accepted (id, limits, codec)
POLL          client -> server        position beacon asking for work
TASK          server -> client        a ``MeasurementTask`` to execute
REPORT        client -> server        a completed ``MeasurementReport``
REPORT_BATCH  client -> server        many reports, client seqs lo..lo+n-1
ACK           server -> client        report durably staged (WAL sequence)
ACK_BATCH     server -> client        range-ACK for a staged batch
RETRY         server -> client        ingest saturated; retry after a delay
PING/PONG     both                    heartbeat / "no task for you"
STATS         client -> server        ask for the server's metric snapshots
REDIRECT      server -> client        frame NOT processed; resend to shard X
MAP_UPDATE    supervisor -> shard     push a new cluster shard map
MAP_ACK       shard -> supervisor     shard map adopted (echoes version)
ERROR         server -> client        typed protocol error; session closes
BYE           both                    orderly close
============  ======================  =====================================

The three cluster frames (REDIRECT / MAP_UPDATE / MAP_ACK) are
additive: protocol version 1 is unchanged, and a single-node server
never emits them (see DESIGN.md §11 for the cluster state machine).

Malformed input never tracebacks a session: decoding raises one of the
typed :class:`WireError` subclasses below, which the session layer maps
to an ERROR frame (``code`` = the exception's wire code) followed by a
close.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.clients.protocol import (
    MeasurementReport,
    MeasurementTask,
    MeasurementType,
)
from repro.geo.coords import GeoPoint
from repro.radio.technology import NetworkId

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "LENGTH_PREFIX",
    "FRAME_TYPES",
    "CODEC_JSON",
    "CODEC_BINARY",
    "SUPPORTED_CODECS",
    "WireError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "ProtocolError",
    "VersionMismatchError",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "task_to_wire",
    "task_from_wire",
    "report_to_wire",
    "report_from_wire",
]

#: Protocol version spoken by this build.  A HELLO carrying any other
#: version is answered with an ERROR(code="version-mismatch") and the
#: session is closed — there is exactly one version in the wild so far.
PROTOCOL_VERSION = 1

#: Hard ceiling on a frame's payload size.  A length prefix above this
#: is treated as a protocol violation (corrupt stream or hostile peer),
#: not an allocation request.
MAX_FRAME_BYTES = 1 << 20

#: The 4-byte big-endian unsigned length prefix.
LENGTH_PREFIX = struct.Struct(">I")

#: Frame payload codecs this build can negotiate.  ``json`` is the
#: canonical default (and the only legal encoding for HELLO/WELCOME);
#: ``binary`` struct-packs the REPORT_BATCH hot path.
CODEC_JSON = "json"
CODEC_BINARY = "binary"
SUPPORTED_CODECS = (CODEC_JSON, CODEC_BINARY)

#: Every frame type either end may legitimately send.
FRAME_TYPES = frozenset(
    {
        "HELLO", "WELCOME", "POLL", "TASK", "REPORT", "REPORT_BATCH",
        "ACK", "ACK_BATCH", "RETRY", "PING", "PONG", "STATS",
        "STATS_REPLY", "REDIRECT", "MAP_UPDATE", "MAP_ACK", "ERROR",
        "BYE",
    }
)


class WireError(Exception):
    """Base of every typed protocol failure.

    ``code`` is the machine-readable token carried by the ERROR frame a
    server answers with; ``detail`` is the human-readable elaboration.
    """

    code = "protocol-error"

    def __init__(self, detail: str = ""):
        super().__init__(detail or self.code)
        self.detail = detail or self.code


class FrameTooLargeError(WireError):
    """Length prefix exceeds the negotiated maximum frame size."""

    code = "frame-too-large"


class TruncatedFrameError(WireError):
    """The stream ended mid-frame (partial prefix or partial payload)."""

    code = "truncated-frame"


class ProtocolError(WireError):
    """Payload is not a valid frame (bad JSON, wrong shape, bad type)."""

    code = "bad-frame"


class VersionMismatchError(WireError):
    """HELLO carried a protocol version this server does not speak."""

    code = "version-mismatch"


def encode_frame(message: Dict[str, Any],
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 codec: str = CODEC_JSON) -> bytes:
    """Serialize one message dict to its length-prefixed frame bytes.

    ``codec`` selects the payload encoding negotiated for the session
    (:data:`CODEC_JSON` pre-negotiation).  Raises :class:`ProtocolError`
    for a message without a ``type`` and :class:`FrameTooLargeError`
    when the encoded payload would exceed ``max_frame_bytes`` (the
    sender's symmetric share of the limit).
    """
    if "type" not in message:
        raise ProtocolError("message has no 'type'")
    if codec == CODEC_BINARY:
        payload = _encode_binary_payload(message)
    else:
        payload = json.dumps(
            message, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame payload {len(payload)} bytes > limit {max_frame_bytes}"
        )
    return LENGTH_PREFIX.pack(len(payload)) + payload


def decode_payload(payload: bytes, codec: str = CODEC_JSON) -> Dict[str, Any]:
    """Parse a frame payload into its message dict (typed errors only)."""
    if codec == CODEC_BINARY:
        return _decode_binary_payload(payload)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("frame has no string 'type'")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    codec: str = CODEC_JSON,
) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream.

    ``codec`` must match what the peer negotiated for this session.
    Returns the decoded message dict, or ``None`` on a clean EOF at a
    frame boundary (the peer closed between frames).  Raises
    :class:`TruncatedFrameError` on EOF inside a frame,
    :class:`FrameTooLargeError` for an oversized length prefix, and
    :class:`ProtocolError` for undecodable payloads.
    """
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise TruncatedFrameError(
            f"EOF after {len(exc.partial)} of {LENGTH_PREFIX.size} "
            "length-prefix bytes"
        ) from None
    (length,) = LENGTH_PREFIX.unpack(prefix)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            f"frame length {length} > limit {max_frame_bytes}"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            f"EOF after {len(exc.partial)} of {length} payload bytes"
        ) from None
    return decode_payload(payload, codec)


# -- the binary codec --------------------------------------------------------
#
# A binary payload is a one-byte tag followed by tag-specific bytes:
#
#   0x00  the remaining bytes are the message's canonical JSON (the
#         escape hatch every frame type can ride);
#   0x01  a struct-packed REPORT_BATCH whose reports all conform to the
#         canonical report schema (exactly the keys report_to_wire
#         emits, with their canonical types).
#
# Packing is *type-preserving*: decode(encode(m)) == m with identical
# value types, so the WAL lines the server writes are byte-identical
# whether a report stream arrived as JSON or binary.  A REPORT_BATCH
# whose reports do not conform (an int where a float belongs, an exotic
# key, an out-of-range task_id) silently falls back to the JSON tag —
# conformance buys speed, never correctness.

_BIN_TAG_JSON = 0x00
_BIN_TAG_REPORT_BATCH = 0x01

#: REPORT_BATCH binary header: tag, seq_lo (i64), report count (u32).
_BIN_BATCH_HEADER = struct.Struct(">BqI")
#: Per-report fixed numeric block: task_id (i64) then the six canonical
#: doubles (start_s, end_s, lat, lon, speed_ms, value).
_BIN_REPORT_FIXED = struct.Struct(">q6d")
#: Per-report string sizes: len(network) u8, len(kind) u8,
#: len(client_id) u16.
_BIN_REPORT_STRLENS = struct.Struct(">BBH")
_BIN_U32 = struct.Struct(">I")
_BIN_U16 = struct.Struct(">H")
_BIN_DOUBLE = struct.Struct(">d")

_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1

#: The exact key set of a canonical wire report (what report_to_wire
#: emits); anything else falls back to the JSON tag.
_REPORT_KEYS = frozenset(
    {
        "task_id", "client_id", "network", "kind", "start_s", "end_s",
        "lat", "lon", "speed_ms", "value", "samples", "extras",
    }
)


class _NotPackable(Exception):
    """A REPORT_BATCH does not conform to the struct-packed schema."""


def _is_float(v: Any) -> bool:
    return type(v) is float


def _is_int64(v: Any) -> bool:
    return type(v) is int and _INT64_MIN <= v <= _INT64_MAX


def _pack_report_batch(message: Dict[str, Any]) -> bytes:
    """Struct-pack a conforming REPORT_BATCH (raises _NotPackable)."""
    if set(message) != {"type", "seq_lo", "reports"}:
        raise _NotPackable
    seq_lo = message["seq_lo"]
    reports = message["reports"]
    if not _is_int64(seq_lo) or type(reports) is not list:
        raise _NotPackable
    if len(reports) > 0xFFFFFFFF:
        raise _NotPackable
    parts = [_BIN_BATCH_HEADER.pack(_BIN_TAG_REPORT_BATCH, seq_lo,
                                    len(reports))]
    append = parts.append
    try:
        for r in reports:
            if type(r) is not dict or set(r) != _REPORT_KEYS:
                raise _NotPackable
            task_id = r["task_id"]
            if not _is_int64(task_id):
                raise _NotPackable
            start_s, end_s = r["start_s"], r["end_s"]
            lat, lon = r["lat"], r["lon"]
            speed_ms, value = r["speed_ms"], r["value"]
            for v in (start_s, end_s, lat, lon, speed_ms, value):
                if not _is_float(v):
                    raise _NotPackable
            network = r["network"].encode("utf-8")
            kind = r["kind"].encode("utf-8")
            client_id = r["client_id"].encode("utf-8")
            if len(network) > 0xFF or len(kind) > 0xFF:
                raise _NotPackable
            if len(client_id) > 0xFFFF:
                raise _NotPackable
            samples = r["samples"]
            extras = r["extras"]
            if type(samples) is not list or type(extras) is not dict:
                raise _NotPackable
            if not all(_is_float(s) for s in samples):
                raise _NotPackable
            append(_BIN_REPORT_FIXED.pack(
                task_id, start_s, end_s, lat, lon, speed_ms, value
            ))
            append(_BIN_REPORT_STRLENS.pack(
                len(network), len(kind), len(client_id)
            ))
            append(network)
            append(kind)
            append(client_id)
            append(_BIN_U32.pack(len(samples)))
            if samples:
                append(struct.pack(f">{len(samples)}d", *samples))
            append(_BIN_U32.pack(len(extras)))
            for k, v in extras.items():
                if type(k) is not str or not _is_float(v):
                    raise _NotPackable
                kb = k.encode("utf-8")
                if len(kb) > 0xFFFF:
                    raise _NotPackable
                append(_BIN_U16.pack(len(kb)))
                append(kb)
                append(_BIN_DOUBLE.pack(v))
    except (AttributeError, TypeError, struct.error):
        #: A non-string where a string belongs, a list of non-numbers,
        #: etc. — all mean "not the canonical shape", not an error.
        raise _NotPackable from None
    return b"".join(parts)


def _encode_binary_payload(message: Dict[str, Any]) -> bytes:
    """Message dict -> binary payload (struct-packed when possible)."""
    if message.get("type") == "REPORT_BATCH":
        try:
            return _pack_report_batch(message)
        except _NotPackable:
            pass
    return bytes((_BIN_TAG_JSON,)) + json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _decode_binary_payload(payload: bytes) -> Dict[str, Any]:
    """Binary payload -> message dict (typed errors only)."""
    if not payload:
        raise ProtocolError("empty binary payload")
    tag = payload[0]
    if tag == _BIN_TAG_JSON:
        return decode_payload(payload[1:], CODEC_JSON)
    if tag == _BIN_TAG_REPORT_BATCH:
        return _unpack_report_batch(payload)
    raise ProtocolError(f"unknown binary payload tag 0x{tag:02x}")


def _unpack_report_batch(payload: bytes) -> Dict[str, Any]:
    """Struct-packed REPORT_BATCH bytes -> the exact sender message."""
    view = memoryview(payload)
    try:
        _, seq_lo, count = _BIN_BATCH_HEADER.unpack_from(view, 0)
        offset = _BIN_BATCH_HEADER.size
        #: Each report needs at least its fixed blocks; a hostile count
        #: is caught before any per-report allocation.
        min_per_report = (_BIN_REPORT_FIXED.size + _BIN_REPORT_STRLENS.size
                          + 2 * _BIN_U32.size)
        if count * min_per_report > len(payload):
            raise ProtocolError(
                f"binary batch claims {count} reports in "
                f"{len(payload)} bytes"
            )
        reports = []
        for _ in range(count):
            (task_id, start_s, end_s, lat, lon, speed_ms,
             value) = _BIN_REPORT_FIXED.unpack_from(view, offset)
            offset += _BIN_REPORT_FIXED.size
            n_net, n_kind, n_client = _BIN_REPORT_STRLENS.unpack_from(
                view, offset
            )
            offset += _BIN_REPORT_STRLENS.size
            if offset + n_net + n_kind + n_client > len(payload):
                raise ProtocolError("truncated string in binary batch")
            network = str(view[offset:offset + n_net], "utf-8")
            offset += n_net
            kind = str(view[offset:offset + n_kind], "utf-8")
            offset += n_kind
            client_id = str(view[offset:offset + n_client], "utf-8")
            offset += n_client
            (n_samples,) = _BIN_U32.unpack_from(view, offset)
            offset += _BIN_U32.size
            if n_samples * 8 > len(payload) - offset:
                raise ProtocolError("binary batch samples overrun payload")
            samples = list(
                struct.unpack_from(f">{n_samples}d", view, offset)
            )
            offset += 8 * n_samples
            (n_extras,) = _BIN_U32.unpack_from(view, offset)
            offset += _BIN_U32.size
            if n_extras * (_BIN_U16.size + 8) > len(payload) - offset:
                raise ProtocolError("binary batch extras overrun payload")
            extras = {}
            for _k in range(n_extras):
                (n_key,) = _BIN_U16.unpack_from(view, offset)
                offset += _BIN_U16.size
                key = str(view[offset:offset + n_key], "utf-8")
                if len(key.encode("utf-8")) != n_key:
                    raise ProtocolError(
                        "truncated extras key in binary batch"
                    )
                offset += n_key
                (extras[key],) = _BIN_DOUBLE.unpack_from(view, offset)
                offset += _BIN_DOUBLE.size
            reports.append({
                "task_id": task_id,
                "client_id": client_id,
                "network": network,
                "kind": kind,
                "start_s": start_s,
                "end_s": end_s,
                "lat": lat,
                "lon": lon,
                "speed_ms": speed_ms,
                "value": value,
                "samples": samples,
                "extras": extras,
            })
        if offset != len(payload):
            raise ProtocolError(
                f"binary batch has {len(payload) - offset} trailing byte(s)"
            )
    except (struct.error, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed binary batch: {exc}") from None
    return {"type": "REPORT_BATCH", "seq_lo": seq_lo, "reports": reports}


# -- dataclass codecs --------------------------------------------------------


def task_to_wire(task: MeasurementTask) -> Dict[str, Any]:
    """``MeasurementTask`` -> JSON-ready dict (exact float round-trip)."""
    return {
        "task_id": task.task_id,
        "network": task.network.value,
        "kind": task.kind.value,
        "zone_id": list(task.zone_id) if task.zone_id is not None else None,
        "issued_at_s": task.issued_at_s,
        "deadline_s": task.deadline_s,
        "params": dict(task.params),
    }


def task_from_wire(data: Dict[str, Any]) -> MeasurementTask:
    """Wire dict -> ``MeasurementTask`` (:class:`ProtocolError` if malformed)."""
    try:
        zone = data.get("zone_id")
        return MeasurementTask(
            task_id=int(data["task_id"]),
            network=NetworkId(data["network"]),
            kind=MeasurementType(data["kind"]),
            zone_id=(int(zone[0]), int(zone[1])) if zone is not None else None,
            issued_at_s=float(data.get("issued_at_s", 0.0)),
            deadline_s=(
                float(data["deadline_s"])
                if data.get("deadline_s") is not None else None
            ),
            params={str(k): float(v)
                    for k, v in (data.get("params") or {}).items()},
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ProtocolError(f"malformed TASK payload: {exc}") from None


def report_to_wire(report: MeasurementReport) -> Dict[str, Any]:
    """``MeasurementReport`` -> JSON-ready dict (exact float round-trip)."""
    return {
        "task_id": report.task_id,
        "client_id": report.client_id,
        "network": report.network.value,
        "kind": report.kind.value,
        "start_s": report.start_s,
        "end_s": report.end_s,
        "lat": report.point.lat,
        "lon": report.point.lon,
        "speed_ms": report.speed_ms,
        "value": report.value,
        "samples": list(report.samples),
        "extras": dict(report.extras),
    }


def report_from_wire(data: Dict[str, Any]) -> MeasurementReport:
    """Wire dict -> ``MeasurementReport`` (:class:`ProtocolError` if malformed)."""
    try:
        return MeasurementReport(
            task_id=int(data["task_id"]),
            client_id=str(data["client_id"]),
            network=NetworkId(data["network"]),
            kind=MeasurementType(data["kind"]),
            start_s=float(data["start_s"]),
            end_s=float(data["end_s"]),
            point=GeoPoint(float(data["lat"]), float(data["lon"])),
            speed_ms=float(data["speed_ms"]),
            value=float(data["value"]),
            samples=[float(s) for s in (data.get("samples") or [])],
            extras={str(k): float(v)
                    for k, v in (data.get("extras") or {}).items()},
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed REPORT payload: {exc}") from None
