"""Per-packet trace records.

The paper logs "packet sequence number, receive timestamp, GPS
coordinates" (Table 1).  :class:`PacketRecord` is that log line; every
metric in :mod:`repro.network.metrics` consumes sequences of these, so
the same functions would work on a real packet capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PacketRecord:
    """One packet of a measurement transfer.

    ``recv_time_s`` is ``None`` for lost packets.  Times are simulation
    seconds; ``size_bytes`` is the application payload size.
    """

    seq: int
    send_time_s: float
    recv_time_s: Optional[float]
    size_bytes: int

    @property
    def lost(self) -> bool:
        """True if the packet never arrived."""
        return self.recv_time_s is None

    @property
    def delay_s(self) -> Optional[float]:
        """One-way delay, or ``None`` for lost packets."""
        if self.recv_time_s is None:
            return None
        return self.recv_time_s - self.send_time_s
