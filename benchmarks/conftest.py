"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper.  The
underlying traces are expensive to generate, so they are built once per
session here and shared.  Scales are reduced from the paper's year of
data to minutes of compute; every bench asserts the *shape* of the
paper's result (who wins, rough factors, crossover locations), not
absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.datasets.generator import DatasetGenerator
from repro.geo.regions import NEW_BRUNSWICK, madison_spot_locations
from repro.radio.network import build_landscape
from repro.radio.technology import NetworkId


def pytest_configure(config):
    # Benchmarks print paper-style tables; -s is implied by reading the
    # benchmark output, but keep prints visible in captured logs too.
    config.addinivalue_line("markers", "figure: paper figure reproduction")


@pytest.fixture(scope="session")
def landscape():
    """The full three-carrier world (city + road corridor + NJ)."""
    return build_landscape(seed=7)


@pytest.fixture(scope="session")
def generator(landscape):
    return DatasetGenerator(landscape, seed=3)


@pytest.fixture(scope="session")
def standalone_trace(generator):
    """Scaled-down Standalone dataset: buses, NetB, TCP 1MB + pings."""
    return generator.standalone(days=8, n_buses=8, n_routes=10, interval_s=60.0, ping_count=3)


@pytest.fixture(scope="session")
def wirover_trace(generator):
    """Scaled-down WiRover dataset: UDP ping series on NetB/NetC."""
    return generator.wirover(days=4, n_city_buses=4, n_intercity=2)


@pytest.fixture(scope="session")
def short_segment_trace(generator):
    """Short-segment dataset: TCP on all three carriers along 20 km."""
    return generator.short_segment(days=8, interval_s=30.0)


@pytest.fixture(scope="session")
def wi_spot(landscape):
    from repro.analysis.spots import select_representative_spot

    return select_representative_spot(
        landscape, madison_spot_locations(1)[0],
        [NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C],
        search_radius_m=1500.0,
    )


@pytest.fixture(scope="session")
def nj_spot(landscape):
    from repro.analysis.spots import select_representative_spot

    return select_representative_spot(
        landscape, NEW_BRUNSWICK,
        [NetworkId.NET_B, NetworkId.NET_C],
        search_radius_m=2000.0,
    )


@pytest.fixture(scope="session")
def spot_traces(generator, wi_spot, nj_spot):
    """Static spot datasets for the representative WI and NJ locations."""
    wi = generator.static_spot(
        wi_spot, "wi",
        networks=[NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C],
        days=1, interval_s=20.0,
    )
    nj = generator.static_spot(
        nj_spot, "nj",
        networks=[NetworkId.NET_B, NetworkId.NET_C],
        days=1, interval_s=20.0,
    )
    return {"wi": wi, "nj": nj}


@pytest.fixture(scope="session")
def proximate_traces(generator, wi_spot, nj_spot):
    """Proximate datasets (driving loops) around the same spots."""
    wi = generator.proximate(
        wi_spot, "wi",
        networks=[NetworkId.NET_A, NetworkId.NET_B, NetworkId.NET_C],
        days=4, interval_s=45.0, udp_packets=60,
    )
    nj = generator.proximate(
        nj_spot, "nj",
        networks=[NetworkId.NET_B, NetworkId.NET_C],
        days=4, interval_s=45.0, udp_packets=60,
    )
    return {"wi": wi, "nj": nj}
