"""Tests for the measurement channel."""

import numpy as np
import pytest

from repro.network.channel import MeasurementChannel
from repro.radio.technology import NetworkId


@pytest.fixture()
def point(landscape):
    return landscape.study_area.anchor.offset(1400.0, 600.0)


def _channel(landscape, net=NetworkId.NET_B, seed=1, bias=1.0):
    return MeasurementChannel(
        landscape, net, np.random.default_rng(seed), rate_bias=bias
    )


class TestUdpTrain:
    def test_saturating_train_measures_capacity(self, landscape, point):
        ch = _channel(landscape)
        link = ch.link_at(point, 3600.0)
        result = ch.udp_train(point, 3600.0, n_packets=150, inter_packet_delay_s=0.0005)
        assert result.throughput_bps == pytest.approx(link.downlink_bps, rel=0.15)

    def test_paced_train_measures_send_rate(self, landscape, point):
        ch = _channel(landscape)
        # 1200 B every 50 ms = 192 kbit/s, far below capacity.
        result = ch.udp_train(point, 3600.0, n_packets=60, inter_packet_delay_s=0.05)
        assert result.throughput_bps == pytest.approx(192_000, rel=0.1)

    def test_records_ordered_and_complete(self, landscape, point):
        result = _channel(landscape).udp_train(point, 10.0, n_packets=40)
        assert len(result.records) == 40
        assert [r.seq for r in result.records] == list(range(40))

    def test_rate_samples_mean_near_capacity(self, landscape, point):
        ch = _channel(landscape)
        samples = []
        caps = []
        for k in range(30):
            t = 100.0 + 137.0 * k
            result = ch.udp_train(point, t, n_packets=60, inter_packet_delay_s=0.0005)
            samples.extend(result.rate_samples_bps)
            caps.append(result.link.downlink_bps)
        assert np.mean(samples) == pytest.approx(np.mean(caps), rel=0.1)

    def test_blackout_loses_most_packets(self, landscape):
        patch = landscape.network(NetworkId.NET_B).failure_patches[0]
        ch = _channel(landscape)
        # Find a blackout instant.
        for t in np.arange(0.0, 5 * 86400.0, 300.0):
            if not landscape.link_state(NetworkId.NET_B, patch.center, t).available:
                result = ch.udp_train(patch.center, float(t), n_packets=50)
                assert result.loss_rate > 0.5
                return
        pytest.fail("no blackout found in 5 days")

    def test_invalid_packet_count(self, landscape, point):
        with pytest.raises(ValueError):
            _channel(landscape).udp_train(point, 0.0, n_packets=0)


class TestTcpDownload:
    def test_throughput_below_udp_capacity(self, landscape, point):
        ch = _channel(landscape)
        caps = [ch.link_at(point, 3600.0 + k).downlink_bps for k in range(0, 60, 5)]
        result = ch.tcp_download(point, 3600.0, size_bytes=1_000_000)
        assert result.throughput_bps < np.mean(caps) * 1.05

    def test_small_downloads_slower(self, landscape, point):
        """Slow start penalizes short flows (lower achieved throughput)."""
        ch = _channel(landscape)
        small = np.mean([
            ch.tcp_download(point, 3600.0 + k * 40, size_bytes=20_000).throughput_bps
            for k in range(10)
        ])
        large = np.mean([
            ch.tcp_download(point, 3600.0 + k * 40, size_bytes=2_000_000).throughput_bps
            for k in range(10)
        ])
        assert small < large

    def test_duration_scales_with_size(self, landscape, point):
        ch = _channel(landscape)
        d1 = ch.tcp_download(point, 100.0, size_bytes=200_000).duration_s
        d2 = ch.tcp_download(point, 100.0, size_bytes=2_000_000).duration_s
        assert d2 > 3.0 * d1

    def test_packetize(self, landscape, point):
        result = _channel(landscape).tcp_download(
            point, 50.0, size_bytes=100_000, packetize=True
        )
        assert result.records
        assert all(not r.lost for r in result.records)

    def test_invalid_size(self, landscape, point):
        with pytest.raises(ValueError):
            _channel(landscape).tcp_download(point, 0.0, size_bytes=0)

    def test_blackout_stalls(self, landscape):
        patch = landscape.network(NetworkId.NET_B).failure_patches[0]
        ch = _channel(landscape)
        for t in np.arange(0.0, 5 * 86400.0, 300.0):
            if not landscape.link_state(NetworkId.NET_B, patch.center, t).available:
                result = ch.tcp_download(patch.center, float(t), size_bytes=100_000)
                assert result.duration_s >= 30.0
                return
        pytest.fail("no blackout found")


class TestPingSeries:
    def test_rtts_match_link(self, landscape, point):
        ch = _channel(landscape)
        link = ch.link_at(point, 3600.0)
        result = ch.ping_series(point, 3600.0, count=30, interval_s=1.0)
        assert result.mean_rtt_s == pytest.approx(link.rtt_s, rel=0.2)

    def test_counts_add_up(self, landscape, point):
        result = _channel(landscape).ping_series(point, 0.0, count=20)
        assert len(result.rtts_s) + result.failures == 20

    def test_blackout_fails_pings(self, landscape):
        patch = landscape.network(NetworkId.NET_B).failure_patches[0]
        ch = _channel(landscape)
        for t in np.arange(0.0, 5 * 86400.0, 300.0):
            if not landscape.link_state(NetworkId.NET_B, patch.center, t).available:
                result = ch.ping_series(patch.center, float(t), count=5, interval_s=0.5)
                assert result.failures >= 1
                return
        pytest.fail("no blackout found")

    def test_invalid_count(self, landscape, point):
        with pytest.raises(ValueError):
            _channel(landscape).ping_series(point, 0.0, count=0)


class TestRateBias:
    def test_bias_scales_throughput(self, landscape, point):
        fast = _channel(landscape, seed=3, bias=1.0)
        slow = _channel(landscape, seed=3, bias=0.5)
        rf = fast.udp_train(point, 500.0, n_packets=100, inter_packet_delay_s=0.0005)
        rs = slow.udp_train(point, 500.0, n_packets=100, inter_packet_delay_s=0.0005)
        assert rs.throughput_bps == pytest.approx(rf.throughput_bps * 0.5, rel=0.15)

    def test_invalid_bias(self, landscape):
        with pytest.raises(ValueError):
            _channel(landscape, bias=0.0)


class TestUplink:
    def test_uplink_slower_than_downlink(self, landscape, point):
        ch = _channel(landscape, seed=9)
        down = ch.udp_train(point, 700.0, n_packets=100, inter_packet_delay_s=0.0005)
        up = ch.udp_train(point, 700.0, n_packets=100, inter_packet_delay_s=0.0005, direction="up")
        assert up.throughput_bps < down.throughput_bps
        link = ch.link_at(point, 700.0)
        assert up.throughput_bps == pytest.approx(link.uplink_bps, rel=0.2)

    def test_invalid_direction(self, landscape, point):
        with pytest.raises(ValueError):
            _channel(landscape).udp_train(point, 0.0, direction="sideways")
