"""Tests for the text report renderer."""

from repro.obs.manifest import RunManifest
from repro.obs.report import (
    _histogram_quantile,
    load_artifacts,
    render_live,
    render_report,
    render_report_from_dir,
)
from repro.obs.telemetry import Telemetry


def _sample_telemetry() -> Telemetry:
    tel = Telemetry()
    tel.counter("coordinator.ticks").inc(10)
    tel.gauge("coordinator.streams").set(4)
    h = tel.histogram("coordinator.epoch_samples", buckets=(10.0, 50.0, 100.0))
    for v in (5.0, 30.0, 70.0):
        h.observe(v)
    with tel.span("sim.run"):
        with tel.span("coordinator.tick"):
            pass
    tel.emit("epoch.close", 100.0, zone=[0, 0], network="NetB", metric="ping")
    tel.emit(
        "calibration.recalibrate", 200.0,
        zone=[0, 0], network="NetB", metric="ping",
        epoch_s_before=1800.0, epoch_s=900.0,
        budget_before=100, budget=60,
    )
    return tel


class TestHistogramQuantile:
    def test_boundary_estimate(self):
        snap = {"buckets": [1.0, 2.0, 4.0], "counts": [50, 49, 1, 0],
                "count": 100, "sum": 0.0, "max": 3.0}
        assert _histogram_quantile(snap, 0.5) == 1.0
        assert _histogram_quantile(snap, 0.99) == 2.0

    def test_empty_is_nan(self):
        snap = {"buckets": [1.0], "counts": [0, 0], "count": 0}
        assert _histogram_quantile(snap, 0.5) != _histogram_quantile(snap, 0.5)


class TestRender:
    def test_render_live_contains_all_sections(self):
        tel = _sample_telemetry()
        manifest = RunManifest("monitor", 7, gen_seed=1)
        text = render_live(tel, manifest)
        assert "run manifest" in text
        assert "coordinator.ticks" in text
        assert "histogram percentiles" in text
        assert "sim.run/coordinator.tick" in text
        assert "event volume" in text
        assert "sample-budget convergence" in text
        assert "100->60" in text  # budget trajectory
        assert "1800->900" in text  # epoch trajectory

    def test_empty_report_degrades_gracefully(self):
        text = render_report(
            {"counters": {}, "gauges": {}, "histograms": {}}, [], {}
        )
        assert "no telemetry recorded" in text

    def test_roundtrip_through_files(self, tmp_path):
        tel = _sample_telemetry()
        tel.write_artifacts(tmp_path, manifest=RunManifest("monitor", 7))
        arts = load_artifacts(str(tmp_path))
        assert arts["metrics"]["counters"]["coordinator.ticks"] == 10.0
        assert arts["manifest"]["seed"] == 7
        text = render_report_from_dir(str(tmp_path))
        assert "coordinator.ticks" in text
        assert "epoch.close" in text

    def test_load_artifacts_missing_dir_contents(self, tmp_path):
        arts = load_artifacts(str(tmp_path))
        assert arts["events"] == []
        assert arts["manifest"] is None
