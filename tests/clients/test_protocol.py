"""Tests for the coordinator/client protocol types."""

import math

from repro.clients.protocol import (
    MeasurementReport,
    MeasurementTask,
    MeasurementType,
)
from repro.geo.coords import GeoPoint
from repro.radio.technology import NetworkId

P = GeoPoint(43.0, -89.4)


class TestMeasurementTask:
    def test_expiry(self):
        task = MeasurementTask(
            task_id=1,
            network=NetworkId.NET_B,
            kind=MeasurementType.PING,
            issued_at_s=0.0,
            deadline_s=100.0,
        )
        assert not task.expired(50.0)
        assert not task.expired(100.0)
        assert task.expired(100.1)

    def test_no_deadline_never_expires(self):
        task = MeasurementTask(
            task_id=1, network=NetworkId.NET_B, kind=MeasurementType.PING
        )
        assert not task.expired(1e12)

    def test_params_default_empty(self):
        task = MeasurementTask(
            task_id=1, network=NetworkId.NET_A, kind=MeasurementType.UDP_TRAIN
        )
        assert task.params == {}


class TestMeasurementReport:
    def _report(self, value=1e6, kind=MeasurementType.UDP_TRAIN, **extras):
        return MeasurementReport(
            task_id=1,
            client_id="c",
            network=NetworkId.NET_B,
            kind=kind,
            start_s=10.0,
            end_s=12.0,
            point=P,
            speed_ms=3.0,
            value=value,
            extras=dict(extras),
        )

    def test_duration(self):
        assert self._report().duration_s == 2.0

    def test_nan_value_is_failure(self):
        assert self._report(value=float("nan")).is_failure()
        assert not self._report(value=5.0).is_failure()

    def test_kind_round_trips_as_string(self):
        assert MeasurementType("udp") is MeasurementType.UDP_TRAIN
        assert str(MeasurementType.TCP_DOWNLOAD) == "tcp"
