"""Measurement channel: simulated transfers over a ground-truth link.

A :class:`MeasurementChannel` binds a carrier within a
:class:`~repro.radio.network.Landscape` to a client RNG and produces the
three measurement primitives the paper uses:

* ``udp_train`` — ``n`` packets sent at a fixed inter-packet delay
  through a bottleneck-queue model; per-packet receive timestamps carry
  the link's jitter, so goodput/loss/IPDV estimators see realistic
  variance (this is what makes "how many packets for 97% accuracy",
  paper Table 5, a non-trivial question);
* ``tcp_download`` — slow-start plus capacity-limited bulk transfer,
  optionally packetized into records;
* ``ping_series`` — periodic small probes yielding RTT samples and
  failures (blackout patches make every probe fail).

Per-client heterogeneity enters through ``rate_bias`` (modem/device
differences) and the client RNG (independent sampling noise), which is
what the composability analysis (paper section 3.3) exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.coords import GeoPoint
from repro.network.metrics import goodput_bps, ipdv_jitter_s, loss_rate
from repro.network.packet import PacketRecord
from repro.radio.network import Landscape, LinkState
from repro.radio.technology import NetworkId

#: TCP's long-run efficiency relative to UDP saturation on a clean link.
TCP_EFFICIENCY = 0.96
#: Slot-scheduler bimodality for *queued* packets: cellular MACs
#: (EV-DO/HSPA) time-multiplex users, so two back-to-back packets either
#: drain within one scheduling grant (a short gap at the slot's peak
#: rate) or straddle grants (a long gap).  The mix keeps the long-run
#: mean equal to the fluid service time — sustained throughput is
#: unchanged — but breaks the packet-pair assumption that one gap equals
#: one transmission time, which is exactly why Pathload/WBest mislead on
#: cellular links (paper section 3.3.1).
SLOT_FAST_PROB = 0.45
SLOT_FAST_FACTOR = 0.15
#: Correlation time of per-packet delay jitter.  Path delay noise is
#: strongly correlated at millisecond separations (the queue state
#: barely changes between two back-to-back packets) and decorrelates
#: over tens of milliseconds — which is why packet-pair gaps expose the
#: slot bimodality cleanly instead of drowning it in jitter.
JITTER_CORR_TIME_S = 0.020
#: Initial congestion window (segments), 2011-era default.
TCP_INIT_CWND = 3
TCP_MSS_BYTES = 1460


@dataclass(frozen=True)
class UdpTrainResult:
    """Outcome of a UDP packet-train measurement.

    ``rate_samples_bps`` holds one instantaneous-rate estimate per
    delivered packet (the linearized reciprocal of the jittered packet
    gap — first-order, so unbiased around the true rate).  These are the
    "client collected packets" whose averages the paper's Table 5
    sample-count search evaluates.
    """

    records: List[PacketRecord]
    throughput_bps: float
    loss_rate: float
    jitter_s: float
    rate_samples_bps: List[float]
    link: LinkState


@dataclass(frozen=True)
class TcpDownloadResult:
    """Outcome of a TCP bulk download."""

    size_bytes: int
    duration_s: float
    throughput_bps: float
    records: List[PacketRecord]
    link: LinkState


@dataclass(frozen=True)
class PingResult:
    """Outcome of a ping series: successful RTTs plus failure count."""

    rtts_s: List[float]
    failures: int
    link: LinkState

    @property
    def mean_rtt_s(self) -> float:
        return sum(self.rtts_s) / len(self.rtts_s) if self.rtts_s else float("nan")

    @property
    def failure_rate(self) -> float:
        total = len(self.rtts_s) + self.failures
        return self.failures / total if total else 0.0


class MeasurementChannel:
    """Simulated measurement path for one client on one carrier."""

    def __init__(
        self,
        landscape: Landscape,
        network: NetworkId,
        rng: np.random.Generator,
        rate_bias: float = 1.0,
    ):
        if rate_bias <= 0:
            raise ValueError("rate_bias must be positive")
        self.landscape = landscape
        self.network = network
        self.rng = rng
        self.rate_bias = float(rate_bias)

    def link_at(self, point: GeoPoint, t: float) -> LinkState:
        """Ground-truth link state seen by this client (bias applied)."""
        raw = self.landscape.link_state(self.network, point, t)
        if self.rate_bias == 1.0:
            return raw
        return LinkState(
            network=raw.network,
            downlink_bps=raw.downlink_bps * self.rate_bias,
            uplink_bps=raw.uplink_bps * self.rate_bias,
            rtt_s=raw.rtt_s,
            jitter_std_s=raw.jitter_std_s,
            loss_rate=raw.loss_rate,
            available=raw.available,
        )

    # -- UDP ---------------------------------------------------------------

    def udp_train(
        self,
        point: GeoPoint,
        t: float,
        n_packets: int = 100,
        packet_size_bytes: int = 1200,
        inter_packet_delay_s: float = 0.001,
        direction: str = "down",
    ) -> UdpTrainResult:
        """Send a UDP train and return per-packet records plus summaries.

        Packets pass a single bottleneck queue at the link's sustained
        rate; receive times add half the RTT and an iid jitter draw.  A
        blacked-out link loses (almost) everything.  ``direction`` picks
        the downlink (default) or uplink rate; the paper collected both
        directions but analyzes the downlink.
        """
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up'")
        link = self.link_at(point, t)
        rate_bps = link.downlink_bps if direction == "down" else link.uplink_bps
        service_s = packet_size_bytes * 8.0 / max(rate_bps, 1e3)
        p_loss = 0.9 if not link.available else link.loss_rate

        # Per-packet instantaneous rate noise: delay jitter mapped into
        # the rate domain to first order (avoids the 1/gap Jensen bias a
        # naive reciprocal would introduce).  Noisier links (large
        # jitter relative to service time) give noisier per-packet rate
        # estimates, which is what drives up the packet counts needed
        # for accurate estimation on the more variable networks.
        rate_noise_rel = min(
            0.40, 0.30 * (link.jitter_std_s / service_s) ** 0.15
        )
        nominal_rate = packet_size_bytes * 8.0 / service_s

        slot_slow_factor = (1.0 - SLOT_FAST_PROB * SLOT_FAST_FACTOR) / (
            1.0 - SLOT_FAST_PROB
        )

        records: List[PacketRecord] = []
        rate_samples: List[float] = []
        queue_free_at = t
        jitter = 0.0
        prev_depart = t
        for seq in range(n_packets):
            send = t + seq * inter_packet_delay_s
            if send < queue_free_at:
                # Queued behind the previous packet: the gap to the next
                # grant is bimodal (see SLOT_FAST_PROB above).
                if self.rng.uniform() < SLOT_FAST_PROB:
                    this_service = service_s * SLOT_FAST_FACTOR
                else:
                    this_service = service_s * slot_slow_factor
            else:
                this_service = service_s
            depart = max(send, queue_free_at) + this_service
            queue_free_at = depart
            if self.rng.uniform() < p_loss:
                records.append(PacketRecord(seq, send, None, packet_size_bytes))
                continue
            # AR(1) jitter: correlation decays with the packet spacing.
            rho = math.exp(-max(depart - prev_depart, 0.0) / JITTER_CORR_TIME_S)
            jitter = rho * jitter + math.sqrt(
                max(0.0, 1.0 - rho * rho)
            ) * float(self.rng.normal(0.0, link.jitter_std_s))
            prev_depart = depart
            recv = depart + link.rtt_s / 2.0 + max(jitter, -0.8 * service_s)
            records.append(PacketRecord(seq, send, recv, packet_size_bytes))
            rate_samples.append(
                max(
                    nominal_rate * 0.05,
                    nominal_rate
                    * (1.0 + float(self.rng.normal(0.0, rate_noise_rel))),
                )
            )

        return UdpTrainResult(
            records=records,
            throughput_bps=goodput_bps(records),
            loss_rate=loss_rate(records),
            jitter_s=ipdv_jitter_s(records),
            rate_samples_bps=rate_samples,
            link=link,
        )

    # -- TCP ---------------------------------------------------------------

    def tcp_download(
        self,
        point: GeoPoint,
        t: float,
        size_bytes: int = 1_000_000,
        packetize: bool = False,
        max_records: int = 2000,
    ) -> TcpDownloadResult:
        """Download ``size_bytes`` over TCP and return duration/throughput.

        Model: slow start from :data:`TCP_INIT_CWND` doubling each RTT
        until the window rate reaches the link's TCP share
        (:data:`TCP_EFFICIENCY` of sustained capacity), then a
        capacity-limited bulk phase.  Loss events cut the effective bulk
        rate mildly (cellular links mask most loss at the RLC layer, and
        the paper observes ~0 loss).  ``packetize=True`` additionally
        emits up to ``max_records`` per-packet records for estimators
        that want packet granularity (paper Table 5's TCP columns).
        """
        if size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        link = self.link_at(point, t)
        if not link.available:
            # A blacked-out link stalls; model as an aborted, very slow
            # transfer dominated by timeouts.
            duration = max(30.0, size_bytes * 8.0 / 1e4)
            return TcpDownloadResult(size_bytes, duration, size_bytes * 8.0 / duration, [], link)

        # A bulk download lasting several seconds averages over the fast
        # fading; sample the link across the transfer window.
        later = [self.link_at(point, t + dt) for dt in (2.5, 5.0)]
        mean_capacity = (
            link.downlink_bps + sum(ls.downlink_bps for ls in later)
        ) / (1 + len(later))
        link = LinkState(
            network=link.network,
            downlink_bps=mean_capacity,
            uplink_bps=link.uplink_bps,
            rtt_s=link.rtt_s,
            jitter_std_s=link.jitter_std_s,
            loss_rate=link.loss_rate,
            available=link.available,
        )

        bulk_rate = link.downlink_bps * TCP_EFFICIENCY
        bulk_rate *= max(0.3, 1.0 - 15.0 * link.loss_rate)
        rtt = link.rtt_s

        remaining = float(size_bytes)
        duration = rtt  # connection setup: one round trip (SYN/SYN-ACK)
        cwnd = TCP_INIT_CWND
        while remaining > 0:
            window_bytes = cwnd * TCP_MSS_BYTES
            round_rate_bps = window_bytes * 8.0 / rtt
            if round_rate_bps >= bulk_rate:
                break
            sent = min(window_bytes, remaining)
            remaining -= sent
            duration += rtt
            cwnd *= 2
        if remaining > 0:
            duration += remaining * 8.0 / bulk_rate

        # Per-download sampling noise: short flows on real links vary a
        # few percent run to run even under identical conditions.
        duration *= max(0.5, 1.0 + float(self.rng.normal(0.0, 0.02)))
        throughput = size_bytes * 8.0 / duration

        records: List[PacketRecord] = []
        if packetize:
            n = min(max_records, max(1, int(math.ceil(size_bytes / TCP_MSS_BYTES))))
            spacing = duration / n
            for seq in range(n):
                send = t + seq * spacing
                jitter = float(self.rng.normal(0.0, link.jitter_std_s))
                recv = send + rtt / 2.0 + max(jitter, -0.4 * spacing)
                records.append(PacketRecord(seq, send, recv, TCP_MSS_BYTES))

        return TcpDownloadResult(
            size_bytes=size_bytes,
            duration_s=duration,
            throughput_bps=throughput,
            records=records,
            link=link,
        )

    # -- Ping --------------------------------------------------------------

    def ping_series(
        self,
        point: GeoPoint,
        t: float,
        count: int = 12,
        interval_s: float = 5.0,
        timeout_s: float = 2.0,
    ) -> PingResult:
        """Send ``count`` pings; return successful RTTs and failure count."""
        if count < 1:
            raise ValueError("count must be >= 1")
        rtts: List[float] = []
        failures = 0
        link = self.link_at(point, t)
        for i in range(count):
            now = t + i * interval_s
            link = self.link_at(point, now)
            if not link.available or self.rng.uniform() < link.loss_rate:
                failures += 1
                continue
            rtt = link.rtt_s + abs(float(self.rng.normal(0.0, link.jitter_std_s)))
            if rtt > timeout_s:
                failures += 1
                continue
            rtts.append(rtt)
        return PingResult(rtts_s=rtts, failures=failures, link=link)
