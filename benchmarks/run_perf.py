"""Standalone perf harness for the vectorized ground-truth path.

Times the scalar reference implementations against the batched/cached
ones and writes ``BENCH_perf.json`` at the repo root (plus one
seed-stamped entry appended to ``BENCH_history.jsonl``, so successive
runs accumulate instead of overwriting each other).  Run with::

    PYTHONPATH=src python benchmarks/run_perf.py [--seed N]

The headline numbers (also asserted here so CI catches regressions):

* ``link_state_batch`` over 10k points vs 10k scalar ``link_state``
  calls — must be >= 10x;
* ``udp_train_batch`` per-train cost vs the frozen per-packet
  ``udp_train_reference`` — must be >= 5x;
* the sharded sweep over an 8-cell scheduler-ablation grid, 4 workers
  vs serial — must be >= 2x *when the machine has >= 4 CPUs* (the
  speedup is recorded either way, together with the CPU count), and the
  merged artifacts must be byte-identical across worker counts;
* the coordinator service under a 1000-client loadgen, run in both wire
  shapes: the PR-5 exchange (one JSON REPORT per frame) — recorded as
  ``serve.reports_per_s`` for history comparability — and the batched
  binary path (REPORT_BATCH frames + range ACKs + WAL group commit),
  which must sustain >= 3x the unbatched rate; zero dropped reports and
  a byte-identical WAL replay per codec are hard gates, and a cProfile
  stage names the hot functions (top-N by cumulative time) in
  ``BENCH_perf.json``;
* the zone-sharded cluster: the same 4-process gateway-routed loadgen
  against a 1-shard and a 3-shard cluster — 3 shards must sustain
  >= 2.5x the 1-shard rate *when >= 8 CPUs are visible* (recorded
  either way), with zero drops and the aggregated live-vs-replay
  byte-compare as unconditional hard gates; the 3-shard rate is
  recorded as ``cluster.reports_per_s`` for the history guard;
* the measurement store: 100k synthetic reports ingested with
  incremental rollups (``store.ingest_samples_per_s`` for the history
  guard), and the rollup-table replay query must answer byte-identically
  to — and >= 2x faster than — a full JSONL refold of the same stream.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.network.channel import MeasurementChannel
from repro.obs.manifest import RunManifest
from repro.radio.network import build_landscape
from repro.radio.technology import NetworkId

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_perf.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"

N_POINTS = 10_000
N_TRAINS = 50
TRAIN_PACKETS = 100


def _time(fn, repeat=5, warmup=1):
    """Best-of-N wall time in seconds (min is the least noisy stat)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_link_state(landscape, points):
    net = NetworkId.NET_B
    t = 500.0

    scalar_pts = points[:1000]  # 10k scalar calls would dominate the run

    def run_scalar():
        return [landscape.link_state(net, p, t) for p in scalar_pts]

    def run_batch():
        return landscape.link_state_batch(net, points, t, use_cache=False)

    def run_cached():
        return landscape.link_state_batch(net, points, t, use_cache=True)

    run_scalar()
    run_batch()
    run_batch()
    landscape.warm_cache(points, nets=[net])
    run_cached()
    run_cached()

    # The headline number is a *ratio*, so the paths are timed in
    # interleaved rounds: a machine-wide slow spell then inflates both
    # sides instead of whichever block happened to run during it, and
    # the best-of minima are drawn from the same quiet windows.
    scalar_s = batch_s = cached_s = float("inf")
    for _ in range(12):
        t0 = time.perf_counter()
        run_scalar()
        scalar_s = min(scalar_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_batch()
        batch_s = min(batch_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_cached()
        cached_s = min(cached_s, time.perf_counter() - t0)

    per_point_scalar = scalar_s / len(scalar_pts)
    scalar_10k = per_point_scalar * N_POINTS
    return {
        "scalar_per_point_us": per_point_scalar * 1e6,
        "batch_10k_ms": batch_s * 1e3,
        "batch_10k_cached_ms": cached_s * 1e3,
        "speedup_batch_vs_scalar": scalar_10k / batch_s,
        "speedup_cached_vs_scalar": scalar_10k / cached_s,
    }


def bench_udp(landscape, point):
    def fresh(seed):
        return MeasurementChannel(
            landscape, NetworkId.NET_B, np.random.default_rng(seed)
        )

    landscape.warm_cache([point])

    # Each repetition simulates a NOVEL stretch of time.  Reusing one
    # time list would let the temporal multiplier memo (one of the new
    # optimizations, attached to the shared landscape) accelerate the
    # frozen baseline from the second repeat on, understating the
    # speedup a fresh workload sees.
    epoch = iter(range(10**9))

    def novel_times():
        base = float(next(epoch)) * 1.0e6
        return [base + 120.0 * k for k in range(N_TRAINS)]

    def run_ref():
        ch = fresh(1)
        return [
            ch.udp_train_reference(point, t, n_packets=TRAIN_PACKETS)
            for t in novel_times()
        ]

    def run_scalar():
        ch = fresh(2)
        return [
            ch.udp_train(point, t, n_packets=TRAIN_PACKETS)
            for t in novel_times()
        ]

    def run_batch():
        return fresh(3).udp_train_batch(
            [point] * N_TRAINS, novel_times(), n_packets=TRAIN_PACKETS
        )

    ref_s = _time(run_ref, repeat=3)
    scalar_s = _time(run_scalar, repeat=3)
    batch_s = _time(run_batch, repeat=3)
    return {
        "reference_per_train_us": ref_s / N_TRAINS * 1e6,
        "scalar_per_train_us": scalar_s / N_TRAINS * 1e6,
        "batch_per_train_us": batch_s / N_TRAINS * 1e6,
        "speedup_scalar_vs_reference": ref_s / scalar_s,
        "speedup_batch_vs_reference": ref_s / batch_s,
    }


def bench_ping_tcp(landscape, point):
    def fresh(seed):
        return MeasurementChannel(
            landscape, NetworkId.NET_B, np.random.default_rng(seed)
        )

    landscape.warm_cache([point])
    ping_s = _time(
        lambda: [
            fresh(4).ping_series(point, 100.0 * k, count=20, interval_s=1.0)
            for k in range(20)
        ],
        repeat=3,
    )
    tcp_s = _time(
        lambda: [
            fresh(5).tcp_download(point, 100.0 * k, size_bytes=1_000_000)
            for k in range(20)
        ],
        repeat=3,
    )
    return {
        "ping_series20_us": ping_s / 20 * 1e6,
        "tcp_download_1mb_us": tcp_s / 20 * 1e6,
    }


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_sweep():
    """Serial vs 4-worker wall clock on a compute-bound ablation grid.

    Uses the scheduler-ablation scenario (pure simulation, no shared
    I/O) at 8 cells x 12 sim-hours so per-cell compute dominates worker
    startup.  Also byte-compares the merged artifacts — the sweep's
    determinism guarantee is part of the perf contract.
    """
    from repro.sweep import SweepGrid, SweepRunner

    def grid():
        return SweepGrid(
            "bench-scheduler", ["ablation_scheduler"],
            seeds=[7, 8, 9, 10],
            matrix={"policy": ["budgeted", "greedy"]},
            base={"hours": 12.0, "n_buses": 3},
        )

    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = os.path.join(tmp, "serial")
        pooled_dir = os.path.join(tmp, "pooled")
        serial = SweepRunner(grid(), serial_dir, workers=1).run()
        pooled = SweepRunner(grid(), pooled_dir, workers=4).run()
        identical = all(
            Path(serial_dir, fn).read_bytes() ==
            Path(pooled_dir, fn).read_bytes()
            for fn in ("summary.jsonl", "metrics.json")
        )
    return {
        "cells": serial.total,
        "cells_ok": min(serial.ok, pooled.ok),
        "serial_s": serial.wall_s,
        "workers4_s": pooled.wall_s,
        "speedup_4workers_vs_serial": serial.wall_s / pooled.wall_s,
        "cpu_count": _cpu_count(),
        "artifacts_byte_identical": identical,
    }


#: Reports coalesced per frame on the batched serve bench path.
SERVE_BATCH_SIZE = 50

#: Each serve shape is measured this many times and the fastest run is
#: recorded.  A single shape lasts ~1-3 s, so one scheduler hiccup or a
#: GC pause inherited from the numpy benches earlier in this process
#: can swing throughput 30%+; best-of-N measures what the code can do,
#: which is what the history regression guard should compare.
SERVE_REPEATS = 3


def _run_serve_shape(codec, batch_size, clients, per_client, concurrency):
    """One loadgen run against a fresh in-process WAL-backed server.

    Returns ``(LoadgenResult, wal_replay_byte_identical)`` for the
    given codec/batch shape; every shape gets its own WAL so the
    replay byte-compare is per codec.
    """
    import asyncio

    from repro.serve.loadgen import LoadgenConfig, run_loadgen
    from repro.serve.server import CoordinatorServer, ServeConfig, replay_wal

    async def body(wal_dir):
        server = CoordinatorServer(ServeConfig(), wal_dir=wal_dir)
        await server.start()
        try:
            result = await run_loadgen(LoadgenConfig(
                port=server.port, clients=clients,
                reports_per_client=per_client, concurrency=concurrency,
                codec=codec, batch_size=batch_size,
            ))
            return result, server.coordinator.metrics.to_json()
        finally:
            await server.stop()

    with tempfile.TemporaryDirectory() as tmp:
        wal_dir = os.path.join(tmp, "wal")
        result, live_metrics = asyncio.run(body(wal_dir))
        replay_identical = (
            replay_wal(wal_dir).metrics.to_json() == live_metrics
        )
    return result, replay_identical


def _best_serve_shape(codec, batch_size, clients, per_client, concurrency,
                      repeats=SERVE_REPEATS):
    """Best-of-``repeats`` serve shape: fastest run, AND of correctness.

    Throughput/latency come from the fastest repeat (noise only ever
    subtracts); the two hard properties — zero drops and byte-identical
    WAL replay — must hold on *every* repeat, so repetition tightens
    the correctness gates rather than letting one good run mask a bad
    one.  Each repeat starts from a collected heap so the serve bench
    is not taxed for garbage left by the benches before it.
    """
    import gc

    best = None
    replay_all = True
    drops = retries = 0
    for _ in range(max(1, repeats)):
        #: Collect then freeze: the landscape/trace graphs built by the
        #: benches before this one otherwise get rescanned by every
        #: gen-2 pass *during* the shape, taxing serve ~20% for garbage
        #: that isn't its own.
        gc.collect()
        gc.freeze()
        result, replay_identical = _run_serve_shape(
            codec, batch_size, clients, per_client, concurrency
        )
        replay_all = replay_all and replay_identical
        drops += result.reports_dropped
        retries += result.retries
        if best is None or result.reports_per_s > best.reports_per_s:
            best = result
    return best, replay_all, drops, retries


def bench_serve():
    """Loadgen throughput against a live, WAL-backed coordinator service.

    Runs 1000 client sessions over loopback TCP against an in-process
    :class:`CoordinatorServer`, twice: the PR-5 wire exchange (one JSON
    REPORT per frame, one ACK each, 5 reports per client — the
    history-comparable shape) and the batched binary path (clients
    coalescing ``SERVE_BATCH_SIZE`` reports per REPORT_BATCH frame,
    range ACKs, WAL group commit).  Each shape is measured
    ``SERVE_REPEATS`` times; the fastest run is recorded while the
    correctness properties must hold on every repeat.  The headline
    gate is the batched path sustaining >= 3x the unbatched rate; zero
    dropped reports and a byte-identical offline WAL replay are hard
    gates for *both* codecs.
    """
    clients = 1000

    #: PR-5 shape, unchanged so ``reports_per_s`` stays comparable
    #: across the whole bench history.
    unbatched, replay_json, drops_json, retries_json = _best_serve_shape(
        "json", 1, clients, 5, 64
    )
    #: Batched shape: each client pushes one coalesced 50-report frame
    #: (lower concurrency keeps in-flight reports inside the default
    #: ingest budget, so throughput is measured without RETRY churn).
    batched, replay_binary, drops_bin, retries_bin = _best_serve_shape(
        "binary", SERVE_BATCH_SIZE, clients, SERVE_BATCH_SIZE, 16
    )
    return {
        "clients": clients,
        "reports_per_client": 5,
        "concurrency": 64,
        "batch_size": SERVE_BATCH_SIZE,
        "serve_repeats": SERVE_REPEATS,
        "reports_acked": unbatched.reports_acked,
        "reports_dropped": drops_json + drops_bin,
        "retries": retries_json + retries_bin,
        "elapsed_s": unbatched.elapsed_s,
        "reports_per_s": unbatched.reports_per_s,
        "ack_p50_ms": unbatched.ack_p50_ms,
        "ack_p95_ms": unbatched.ack_p95_ms,
        "ack_p99_ms": unbatched.ack_p99_ms,
        #: Batched binary — the throughput path this bench gates.
        "batched_reports_acked": batched.reports_acked,
        "reports_per_s_batched": batched.reports_per_s,
        "batched_ack_p95_ms": batched.ack_p95_ms,
        "speedup_batched_vs_unbatched": (
            batched.reports_per_s / max(unbatched.reports_per_s, 1e-9)
        ),
        "wal_replay_byte_identical": replay_json and replay_binary,
    }


def profile_serve(top_n=15):
    """cProfile the batched serve hot path; top-N by cumulative time.

    A perf PR should name the functions it claims are hot: this runs a
    reduced batched-binary loadgen shape under cProfile and returns the
    repo's own functions (plus the asyncio/json/struct layers they sit
    on) ranked by cumulative time, for BENCH_perf.json.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    _run_serve_shape("binary", SERVE_BATCH_SIZE, 200, 5, 32)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    total_time = stats.total_tt
    out = []
    for func in stats.fcn_list:
        if len(out) >= top_n:
            break
        filename, lineno, name = func
        #: Skip the harness wrappers above the event loop — they are
        #: 100% cumulative by construction and name nothing hot.
        if name in ("<module>", "profile_serve", "_run_serve_shape"):
            continue
        cc, nc, tt, ct, _callers = stats.stats[func]
        short = os.path.join(*Path(filename).parts[-2:]) \
            if filename != "~" else name
        out.append({
            "function": f"{short}:{lineno}({name})",
            "ncalls": nc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    return {"total_time_s": round(total_time, 6),
            "top_by_cumulative": out}


#: Parallel loadgen worker processes driving the cluster bench (each
#: worker is its own process so client-side encoding never serializes
#: on one GIL while we measure server-side scaling).
CLUSTER_WORKERS = 4
CLUSTER_CLIENTS_PER_WORKER = 200
CLUSTER_REPORTS_PER_CLIENT = 50
#: Cluster shapes are wall-clock heavy (subprocess spawn + real load),
#: so best-of-2 rather than the serve bench's best-of-3.
CLUSTER_REPEATS = 2


def _run_cluster_shape(shards):
    """One multi-process loadgen run against an N-shard cluster.

    Starts ``repro serve cluster`` (gateway + ``shards`` shard
    subprocesses), drives it with ``CLUSTER_WORKERS`` parallel
    ``repro serve loadgen --cluster`` processes over disjoint client
    populations, and returns throughput plus the two hard properties:
    zero drops anywhere, and the gateway's aggregated STATS
    byte-matching an offline ``serve replay --cluster``.  The rate is
    total ACKed reports over the slowest worker's internal elapsed time
    — worker startup (interpreter + map fetch) is excluded, shard-side
    work is not.
    """
    import signal
    import subprocess

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    def wait_port(path, proc, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if path.exists() and path.read_text().strip():
                return int(path.read_text().strip())
            if proc.poll() is not None:
                out = proc.stdout.read() if proc.stdout else ""
                raise RuntimeError(f"cluster exited during startup:\n{out}")
            time.sleep(0.05)
        proc.kill()
        raise RuntimeError("cluster did not write its port file in time")

    with tempfile.TemporaryDirectory() as tmp:
        cluster_dir = os.path.join(tmp, "cluster")
        port_file = Path(tmp, "gateway-port")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "cluster",
             "--dir", cluster_dir, "--shards", str(shards),
             "--port-file", str(port_file)],
            env=env, cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            gw_port = wait_port(port_file, proc)
            workers = []
            for w in range(CLUSTER_WORKERS):
                workers.append(subprocess.Popen(
                    [sys.executable, "-m", "repro", "serve", "loadgen",
                     "--port", str(gw_port), "--cluster",
                     "--clients", str(CLUSTER_CLIENTS_PER_WORKER),
                     "--reports-per-client",
                     str(CLUSTER_REPORTS_PER_CLIENT),
                     "--batch-size", str(SERVE_BATCH_SIZE),
                     "--codec", "binary", "--concurrency", "16",
                     "--client-offset",
                     str(w * CLUSTER_CLIENTS_PER_WORKER),
                     "--format", "json"],
                    env=env, cwd=str(REPO_ROOT),
                    stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                    text=True,
                ))
            acked = dropped = 0
            slowest = 0.0
            for w in workers:
                out, err = w.communicate(timeout=600)
                if w.returncode != 0:
                    raise RuntimeError(
                        f"cluster loadgen worker failed "
                        f"(rc={w.returncode}):\n{out}\n{err}"
                    )
                d = json.loads(out)
                acked += d["reports_acked"]
                dropped += d["reports_dropped"]
                slowest = max(slowest, d["elapsed_s"])

            import asyncio

            from repro.serve.driver import ServeSession

            async def agg():
                async with ServeSession("127.0.0.1", gw_port,
                                        client_id="bench-stats",
                                        networks=[]) as session:
                    return (await session.stats())["coordinator"]

            live = asyncio.run(agg())
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30.0)
            replay = subprocess.run(
                [sys.executable, "-m", "repro", "serve", "replay",
                 "--wal", cluster_dir, "--cluster", "--format", "json"],
                env=env, cwd=str(REPO_ROOT),
                capture_output=True, text=True, check=True,
            )
            canonical = dict(sort_keys=True, separators=(",", ":"))
            identical = (
                json.dumps(live, **canonical)
                == json.dumps(json.loads(replay.stdout), **canonical)
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
    return {
        "reports_acked": acked,
        "reports_dropped": dropped,
        "elapsed_s": slowest,
        "reports_per_s": acked / max(slowest, 1e-9),
        "replay_byte_identical": identical,
    }


def bench_cluster():
    """Shard-scaling of the cluster: 1-shard vs 3-shard throughput.

    Both shapes run the identical multi-process load (4 loadgen worker
    processes, batched binary, 40k reports total) through the same
    gateway-routed client path, so the single difference is how many
    shard processes share the ingest work.  Records
    ``cluster.reports_per_s`` (the 3-shard rate) for the history guard
    and the 3-vs-1 ``speedup_3shard_vs_1shard``; zero drops and the
    aggregated live-vs-replay byte-compare are hard gates on both
    shapes.  Best-of-``CLUSTER_REPEATS`` for the rates, AND over the
    correctness bits.
    """
    def best_of(shards):
        best = None
        drops = 0
        replay_ok = True
        for _ in range(max(1, CLUSTER_REPEATS)):
            r = _run_cluster_shape(shards)
            drops += r["reports_dropped"]
            replay_ok = replay_ok and r["replay_byte_identical"]
            if best is None or r["reports_per_s"] > best["reports_per_s"]:
                best = r
        best["reports_dropped"] = drops
        best["replay_byte_identical"] = replay_ok
        return best

    single = best_of(1)
    three = best_of(3)
    return {
        "workers": CLUSTER_WORKERS,
        "clients": CLUSTER_WORKERS * CLUSTER_CLIENTS_PER_WORKER,
        "reports_per_client": CLUSTER_REPORTS_PER_CLIENT,
        "batch_size": SERVE_BATCH_SIZE,
        "cluster_repeats": CLUSTER_REPEATS,
        "cpu_count": _cpu_count(),
        "reports_acked": three["reports_acked"],
        "reports_dropped": single["reports_dropped"]
        + three["reports_dropped"],
        "elapsed_s": three["elapsed_s"],
        #: The history-guarded headline: 3-shard cluster throughput.
        "reports_per_s": three["reports_per_s"],
        "reports_per_s_1shard": single["reports_per_s"],
        "speedup_3shard_vs_1shard": (
            three["reports_per_s"] / max(single["reports_per_s"], 1e-9)
        ),
        "replay_byte_identical": (
            single["replay_byte_identical"]
            and three["replay_byte_identical"]
        ),
    }


#: Synthetic reports ingested by the store bench (~300k sample values).
N_STORE_REPORTS = 100_000


def bench_store():
    """Measurement-store ingest rate and rollup-vs-refold query latency.

    Ingests ``N_STORE_REPORTS`` synthetic reports (pure index
    arithmetic — no landscape build, so the bench isolates store cost)
    into a fresh store, then answers the replay-counter question two
    ways: a SELECT over the incrementally-maintained rollup tables,
    and a full re-fold of the same stream from a JSONL file (parse +
    re-validate + accumulate — what every query cost before the
    store existed).  The two snapshots must be byte-identical; the
    rollup path must be >= 2x faster.  ``ingest_samples_per_s`` is the
    history-guarded headline.
    """
    from repro.clients.protocol import MeasurementReport, MeasurementType
    from repro.core.validation import ReportValidator
    from repro.geo.regions import madison_study_area
    from repro.geo.zones import ZoneGrid
    from repro.serve.wire import report_from_wire, report_to_wire
    from repro.store import (
        connect,
        create_run,
        ingest_reports,
        replay_snapshot,
    )

    anchor = madison_study_area().anchor
    kinds = (MeasurementType.TCP_DOWNLOAD, MeasurementType.UDP_TRAIN,
             MeasurementType.PING)
    nets = tuple(NetworkId)

    def synth(i):
        kind = kinds[i % 3]
        start = 1000.0 + i * 0.5
        point = anchor.offset(
            float((i * 37) % 8000) - 4000.0,
            float((i * 53) % 8000) - 4000.0,
        )
        if kind is MeasurementType.PING:
            value = 0.02 + (i % 50) * 1e-4
            samples = [value - 1e-4, value, value + 1e-4]
        else:
            value = 1.0e6 + (i % 1000) * 1.0e3
            samples = []
        return MeasurementReport(
            task_id=i, client_id=f"bench-{i % 97}",
            network=nets[i % len(nets)], kind=kind,
            start_s=start, end_s=start + 5.0, point=point,
            speed_ms=10.0, value=value, samples=samples,
        )

    reports = [synth(i) for i in range(N_STORE_REPORTS)]
    n_samples = sum(len(r.samples) or 1 for r in reports)
    grid = ZoneGrid(anchor, radius_m=250.0)

    with tempfile.TemporaryDirectory() as tmp:
        jsonl_path = os.path.join(tmp, "reports.jsonl")
        with open(jsonl_path, "w", encoding="utf-8") as fh:
            for r in reports:
                fh.write(json.dumps(report_to_wire(r), sort_keys=True)
                         + "\n")

        conn = connect(os.path.join(tmp, "bench.sqlite"))
        run_id = create_run(conn, "bench", kind="bench")
        t0 = time.perf_counter()
        ingest_reports(conn, run_id, reports, grid)
        ingest_s = time.perf_counter() - t0

        def query_store():
            return replay_snapshot(conn, run_id)

        def refold_jsonl():
            validator = ReportValidator()
            ingested = samples_n = rejected = 0
            reasons = {}
            with open(jsonl_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    r = report_from_wire(json.loads(line))
                    outcome = validator.validate(r, r.start_s)
                    if outcome.ok:
                        ingested += 1
                        samples_n += len(r.samples) if r.samples else 1
                    else:
                        rejected += 1
                        reasons[outcome.reason] = (
                            reasons.get(outcome.reason, 0) + 1
                        )
            counters = {}
            if ingested:
                counters["coordinator.reports_ingested"] = float(ingested)
                counters["coordinator.samples_ingested"] = float(samples_n)
            if rejected:
                counters["coordinator.reports_rejected"] = float(rejected)
            for reason in sorted(reasons):
                counters[f"validator.reject.{reason}"] = float(
                    reasons[reason]
                )
            return {"counters": counters, "gauges": {},
                    "histograms": {}}

        identical = (
            json.dumps(query_store(), sort_keys=True)
            == json.dumps(refold_jsonl(), sort_keys=True)
        )
        query_s = _time(query_store, repeat=5)
        refold_s = _time(refold_jsonl, repeat=3)
        conn.close()
    return {
        "reports": N_STORE_REPORTS,
        "samples": n_samples,
        "ingest_s": ingest_s,
        "ingest_samples_per_s": n_samples / max(ingest_s, 1e-9),
        "ingest_reports_per_s": N_STORE_REPORTS / max(ingest_s, 1e-9),
        "rollup_query_ms": query_s * 1e3,
        "jsonl_refold_ms": refold_s * 1e3,
        "speedup_query_vs_refold": refold_s / max(query_s, 1e-9),
        "snapshot_byte_identical": identical,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    args = parser.parse_args()

    print("building landscape ...")
    landscape = build_landscape(seed=args.seed)
    point = landscape.study_area.anchor.offset(1200.0, -500.0)
    rng = np.random.default_rng(3)
    points = [
        landscape.study_area.anchor.offset(
            float(rng.uniform(-6000.0, 6000.0)),
            float(rng.uniform(-6000.0, 6000.0)),
        )
        for _ in range(N_POINTS)
    ]

    print("timing link-state path ...")
    link = bench_link_state(landscape, points)
    print("timing udp trains ...")
    udp = bench_udp(landscape, point)
    print("timing ping/tcp ...")
    other = bench_ping_tcp(landscape, point)
    print("timing sharded sweep (serial vs 4 workers) ...")
    sweep = bench_sweep()
    print("timing coordinator service (1000-client loadgen, "
          "unbatched json vs batched binary) ...")
    serve = bench_serve()
    print("timing sharded cluster (1-shard vs 3-shard, 4 loadgen "
          "worker processes) ...")
    cluster = bench_cluster()
    print("timing measurement store (100k-report ingest, rollup query "
          "vs JSONL refold) ...")
    store = bench_store()
    print("profiling the batched serve hot path (cProfile) ...")
    profile = profile_serve()

    manifest = RunManifest(
        run_kind="bench-perf",
        seed=args.seed,
        extra={
            "n_points": N_POINTS,
            "n_trains": N_TRAINS,
            "train_packets": TRAIN_PACKETS,
        },
    )
    results = {
        "n_points": N_POINTS,
        "n_trains": N_TRAINS,
        "train_packets": TRAIN_PACKETS,
        "link_state": link,
        "udp_train": udp,
        "ping_tcp": other,
        "sweep": sweep,
        "serve": serve,
        "cluster": cluster,
        "store": store,
        "profile": profile,
        "manifest": manifest.to_dict(),
    }
    OUT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    # History accumulates one line per run (the manifest identifies the
    # seed/version that produced each entry); wall-clock is fine here —
    # bench history is a log, not a determinism-checked artifact.
    entry = dict(results)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    with HISTORY_PATH.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwrote {OUT_PATH}; appended to {HISTORY_PATH}")

    failures = []
    if link["speedup_batch_vs_scalar"] < 10.0:
        failures.append(
            "link_state_batch(10k) speedup "
            f"{link['speedup_batch_vs_scalar']:.1f}x < 10x"
        )
    if udp["speedup_batch_vs_reference"] < 5.0:
        failures.append(
            "udp_train_batch speedup "
            f"{udp['speedup_batch_vs_reference']:.1f}x < 5x"
        )
    if not sweep["artifacts_byte_identical"]:
        failures.append(
            "sweep artifacts differ between serial and 4-worker runs"
        )
    # The serve bench has no absolute throughput floor (it is recorded
    # and guarded as a non-regression by check_regression.py), but its
    # correctness properties are hard gates.
    if serve["reports_dropped"] != 0:
        failures.append(
            f"serve loadgen dropped {serve['reports_dropped']} report(s)"
        )
    if not serve["wal_replay_byte_identical"]:
        failures.append(
            "serve WAL replay does not reproduce the live coordinator state"
        )
    if serve["speedup_batched_vs_unbatched"] < 3.0:
        failures.append(
            "serve batched-binary path "
            f"{serve['speedup_batched_vs_unbatched']:.2f}x < 3x over "
            "the unbatched json path"
        )
    # Cluster correctness is unconditional; the scaling gate (like the
    # sweep's) needs real parallel hardware: gateway + 3 shards +
    # supervisor + 4 loadgen workers only scale where ~8 cores exist.
    if cluster["reports_dropped"] != 0:
        failures.append(
            f"cluster loadgen dropped {cluster['reports_dropped']} "
            f"report(s)"
        )
    if not cluster["replay_byte_identical"]:
        failures.append(
            "aggregated cluster replay does not reproduce the gateway's "
            "live registry"
        )
    if cluster["cpu_count"] >= 8:
        if cluster["speedup_3shard_vs_1shard"] < 2.5:
            failures.append(
                "cluster 3-shard speedup "
                f"{cluster['speedup_3shard_vs_1shard']:.2f}x < 2.5x "
                f"on {cluster['cpu_count']} CPUs"
            )
    else:
        print(
            f"note: cluster scaling gate skipped — only "
            f"{cluster['cpu_count']} CPU(s) visible "
            f"(measured {cluster['speedup_3shard_vs_1shard']:.2f}x)"
        )
    # Store correctness is unconditional: the rollup tables must answer
    # the replay question byte-identically to a full refold.  The
    # latency gate is conservative (the measured gap is orders of
    # magnitude) so I/O-noisy CI machines never flap on it.
    if not store["snapshot_byte_identical"]:
        failures.append(
            "store rollup snapshot differs from the JSONL refold"
        )
    if store["speedup_query_vs_refold"] < 2.0:
        failures.append(
            "store rollup query only "
            f"{store['speedup_query_vs_refold']:.1f}x faster than the "
            "JSONL refold (< 2x)"
        )
    if sweep["cells_ok"] < sweep["cells"]:
        failures.append(
            f"sweep completed only {sweep['cells_ok']}/{sweep['cells']} cells"
        )
    # The parallel-speedup gate needs parallel hardware: enforce >= 2x
    # only where 4 workers can actually run concurrently.
    if sweep["cpu_count"] >= 4:
        if sweep["speedup_4workers_vs_serial"] < 2.0:
            failures.append(
                "sweep 4-worker speedup "
                f"{sweep['speedup_4workers_vs_serial']:.2f}x < 2x "
                f"on {sweep['cpu_count']} CPUs"
            )
    else:
        print(
            f"note: sweep speedup gate skipped — only "
            f"{sweep['cpu_count']} CPU(s) visible "
            f"(measured {sweep['speedup_4workers_vs_serial']:.2f}x)"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(
        f"OK: link_state_batch {link['speedup_batch_vs_scalar']:.1f}x, "
        f"udp_train_batch {udp['speedup_batch_vs_reference']:.1f}x, "
        f"sweep 4w {sweep['speedup_4workers_vs_serial']:.2f}x "
        f"on {sweep['cpu_count']} CPU(s), "
        f"serve {serve['reports_per_s']:.0f} reports/s unbatched json, "
        f"{serve['reports_per_s_batched']:.0f} reports/s batched binary "
        f"({serve['speedup_batched_vs_unbatched']:.1f}x, "
        f"p99 ACK {serve['ack_p99_ms']:.1f} ms), "
        f"cluster {cluster['reports_per_s']:.0f} reports/s over 3 shards "
        f"({cluster['speedup_3shard_vs_1shard']:.2f}x vs 1 shard), "
        f"store {store['ingest_samples_per_s']:.0f} samples/s ingest "
        f"(rollup query {store['speedup_query_vs_refold']:.0f}x faster "
        f"than refold)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
