"""CI smoke test for the coordinator service's crash-recovery story.

Exercises the full deployment loop against real processes over loopback
TCP::

    server #1 (subprocess) --SIGKILL mid-run--> server #2 (same port,
        same WAL) --loadgen rides over the restart--> verify

and asserts the two properties the serve subsystem promises:

* **zero dropped reports** — the 50-client loadgen finishes with every
  report ACKed, its reconnect-and-resend logic riding over the kill;
* **byte-identical recovery** — after the run quiesces, the restarted
  server's coordinator registry (fetched over the wire via STATS)
  matches an offline ``repro serve replay`` of the WAL exactly.

Run from the repo root::

    PYTHONPATH=src python tools/serve_smoke.py [--codec {json,binary}]
                                               [--batch-size N]
                                               [--cluster]

``--codec``/``--batch-size`` select the wire shape the loadgen drives
(defaults are the PR-5 exchange: JSON, one report per frame); CI runs
the smoke once per codec so the kill/restart recovery story is proven
for both.

``--cluster`` runs the sharded variant instead: a 3-shard cluster
behind a gateway, one shard SIGKILLed mid-run.  The assertions shift to
the cluster promises — zero drops *cluster-wide* (clients re-route via
REDIRECT/map refresh rather than waiting for a restart), the dead
shard's WAL drained into the survivors, and the gateway's aggregated
STATS byte-identical to an offline ``repro serve replay --cluster``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.driver import ServeSession  # noqa: E402
from repro.serve.loadgen import LoadgenConfig, run_loadgen_sync  # noqa: E402
from repro.serve.wal import wal_segments  # noqa: E402

CLIENTS = 50
REPORTS_PER_CLIENT = 100
START_TIMEOUT_S = 30.0
#: SIGKILL the first server once this much WAL is durably staged —
#: early enough that the bulk of the run rides over the restart.
KILL_AFTER_WAL_BYTES = 4096


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def start_server(wal_dir: str, port_file: str, port: int = 0):
    """Launch ``repro serve run`` and wait until it reports its port."""
    if os.path.exists(port_file):
        os.remove(port_file)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "run",
         "--port", str(port), "--wal", wal_dir, "--port-file", port_file],
        env=_env(), cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT_S
    while time.monotonic() < deadline:
        if os.path.exists(port_file):
            text = Path(port_file).read_text().strip()
            if text:
                return proc, int(text)
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise RuntimeError(f"server exited during startup:\n{out}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server did not write its port file in time")


def wal_bytes(wal_dir: str) -> int:
    return sum(os.path.getsize(p) for p in wal_segments(wal_dir))


def fetch_coordinator_snapshot(port: int) -> dict:
    """The server's coordinator metrics registry, over the wire."""

    async def body():
        async with ServeSession("127.0.0.1", port, client_id="smoke-stats",
                                networks=[]) as session:
            reply = await session.stats()
            return reply["coordinator"]

    return asyncio.run(body())


def offline_replay_snapshot(wal_dir: str) -> dict:
    """The coordinator registry an offline WAL replay reconstructs."""
    out = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "replay",
         "--wal", wal_dir, "--format", "json"],
        env=_env(), cwd=str(REPO_ROOT),
        capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout)


def start_cluster(cluster_dir: str, port_file: str, shards: int):
    """Launch ``repro serve cluster`` and wait for the gateway port."""
    if os.path.exists(port_file):
        os.remove(port_file)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "cluster",
         "--dir", cluster_dir, "--shards", str(shards),
         "--port-file", port_file],
        env=_env(), cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + START_TIMEOUT_S
    while time.monotonic() < deadline:
        if os.path.exists(port_file):
            text = Path(port_file).read_text().strip()
            if text:
                return proc, int(text)
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise RuntimeError(f"cluster exited during startup:\n{out}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("cluster did not write its port file in time")


def offline_cluster_snapshot(cluster_dir: str) -> dict:
    """The aggregated registry an offline cluster replay reconstructs."""
    out = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "replay",
         "--wal", cluster_dir, "--cluster", "--format", "json"],
        env=_env(), cwd=str(REPO_ROOT),
        capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout)


def cluster_main(args) -> int:
    """The ``--cluster`` smoke: 3 shards, SIGKILL one, zero drops."""
    clients = 40
    with tempfile.TemporaryDirectory() as tmp:
        cluster_dir = os.path.join(tmp, "cluster")
        port_file = os.path.join(tmp, "gateway-port")

        print(f"starting 3-shard cluster (dir {cluster_dir}) ...")
        proc, gw_port = start_cluster(cluster_dir, port_file, shards=3)
        manifest = json.loads(
            Path(cluster_dir, "cluster.json").read_text()
        )
        victim = manifest["shards"][1]
        print(f"gateway up on port {gw_port}; map "
              f"{manifest['map_version']}; victim will be "
              f"{victim['shard_id']} (pid {victim['pid']})")

        cfg = LoadgenConfig(
            port=gw_port, clients=clients,
            reports_per_client=REPORTS_PER_CLIENT, concurrency=32,
            max_reconnects=50, reconnect_delay_s=0.2,
            codec=args.codec, batch_size=max(args.batch_size, 10),
            cluster=True,
        )
        results = {}

        def drive():
            results["load"] = run_loadgen_sync(cfg)

        loader = threading.Thread(target=drive, daemon=True)
        loader.start()

        victim_wal = os.path.join(REPO_ROOT, victim["wal"]) \
            if not os.path.isabs(victim["wal"]) else victim["wal"]
        deadline = time.monotonic() + START_TIMEOUT_S
        while wal_bytes(victim_wal) < KILL_AFTER_WAL_BYTES:
            if not loader.is_alive():
                raise RuntimeError("loadgen finished before the kill fired")
            if time.monotonic() > deadline:
                raise RuntimeError("victim WAL never reached the kill "
                                   "threshold")
            time.sleep(0.01)

        staged = wal_bytes(victim_wal)
        print(f"SIGKILL {victim['shard_id']} with {staged} WAL bytes "
              f"staged ...")
        os.kill(victim["pid"], signal.SIGKILL)

        #: Wait for the supervisor to retire the victim (rebalance +
        #: WAL drain complete and persisted in the manifest).
        deadline = time.monotonic() + START_TIMEOUT_S
        while time.monotonic() < deadline:
            manifest = json.loads(
                Path(cluster_dir, "cluster.json").read_text()
            )
            if any(r["shard_id"] == victim["shard_id"]
                   for r in manifest.get("retired", [])):
                break
            time.sleep(0.05)
        else:
            raise RuntimeError("supervisor never retired the dead shard")
        drained = [r for r in manifest["retired"]
                   if r["shard_id"] == victim["shard_id"]][0]
        print(f"{victim['shard_id']} retired; "
              f"{drained['drained_records']} WAL records drained into "
              f"{len(manifest['shards'])} survivor(s)")

        loader.join(timeout=120.0)
        if loader.is_alive():
            proc.kill()
            raise RuntimeError("loadgen did not finish after the kill")
        load = results["load"]
        print(
            f"loadgen done: acked={load.reports_acked} "
            f"dropped={load.reports_dropped} retries={load.retries} "
            f"reconnects={load.reconnects} "
            f"({load.reports_per_s:.0f} reports/s)"
        )

        failures = []
        if load.reports_dropped != 0:
            failures.append(
                f"{load.reports_dropped} report(s) dropped across the "
                f"shard kill"
            )
        if load.reports_acked != clients * REPORTS_PER_CLIENT:
            failures.append(
                f"acked {load.reports_acked} != "
                f"{clients * REPORTS_PER_CLIENT} sent"
            )
        if load.reconnects == 0:
            failures.append("kill did not interrupt any client "
                            "(smoke raced past the rebalance)")

        live = fetch_coordinator_snapshot(gw_port)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30.0)

        replayed = offline_cluster_snapshot(cluster_dir)
        canonical = dict(sort_keys=True, separators=(",", ":"))
        if (json.dumps(live, **canonical)
                != json.dumps(replayed, **canonical)):
            failures.append(
                "offline cluster replay does not match the gateway's "
                "aggregated live registry"
            )
        else:
            ingested = live.get("counters", {}).get(
                "coordinator.reports_ingested", 0.0
            )
            print(f"handoff verified: aggregated replay is "
                  f"byte-identical ({ingested:.0f} reports ingested "
                  f"across the cluster)")

        if failures:
            for f in failures:
                print(f"FAIL: {f}")
            return 1
        print("cluster smoke OK")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--codec", choices=("json", "binary"),
                        default="json",
                        help="session codec the loadgen negotiates")
    parser.add_argument("--batch-size", type=int, default=1,
                        help="reports coalesced per REPORT_BATCH frame")
    parser.add_argument("--cluster", action="store_true",
                        help="run the 3-shard kill-one cluster variant "
                             "instead of the single-node kill/restart")
    args = parser.parse_args()
    if args.cluster:
        return cluster_main(args)

    with tempfile.TemporaryDirectory() as tmp:
        wal_dir = os.path.join(tmp, "wal")
        port_file = os.path.join(tmp, "port")

        print(f"starting server #1 (WAL in {wal_dir}) ...")
        proc, port = start_server(wal_dir, port_file)
        print(f"server #1 up on port {port}; "
              f"driving {CLIENTS}x{REPORTS_PER_CLIENT} reports "
              f"(codec={args.codec}, batch={args.batch_size}) ...")

        cfg = LoadgenConfig(
            port=port, clients=CLIENTS,
            reports_per_client=REPORTS_PER_CLIENT, concurrency=32,
            max_reconnects=50, reconnect_delay_s=0.2,
            codec=args.codec, batch_size=args.batch_size,
        )
        results = {}

        def drive():
            results["load"] = run_loadgen_sync(cfg)

        loader = threading.Thread(target=drive, daemon=True)
        loader.start()

        deadline = time.monotonic() + START_TIMEOUT_S
        while wal_bytes(wal_dir) < KILL_AFTER_WAL_BYTES:
            if not loader.is_alive():
                raise RuntimeError("loadgen finished before the kill fired")
            if time.monotonic() > deadline:
                raise RuntimeError("WAL never reached the kill threshold")
            time.sleep(0.01)

        staged = wal_bytes(wal_dir)
        print(f"SIGKILL server #1 with {staged} WAL bytes staged ...")
        proc.send_signal(signal.SIGKILL)
        proc.wait()

        print(f"restarting server #2 on port {port} (recovering WAL) ...")
        proc2, port2 = start_server(wal_dir, port_file, port=port)
        assert port2 == port, (port2, port)

        loader.join(timeout=120.0)
        if loader.is_alive():
            proc2.kill()
            raise RuntimeError("loadgen did not finish after the restart")
        load = results["load"]
        print(
            f"loadgen done: acked={load.reports_acked} "
            f"dropped={load.reports_dropped} retries={load.retries} "
            f"reconnects={load.reconnects} "
            f"({load.reports_per_s:.0f} reports/s, "
            f"p99 ACK {load.ack_p99_ms:.1f} ms)"
        )

        failures = []
        if load.reports_dropped != 0:
            failures.append(
                f"{load.reports_dropped} report(s) dropped across the kill"
            )
        if load.reports_acked != CLIENTS * REPORTS_PER_CLIENT:
            failures.append(
                f"acked {load.reports_acked} != "
                f"{CLIENTS * REPORTS_PER_CLIENT} sent"
            )
        if load.reconnects == 0:
            failures.append("kill did not interrupt any session "
                            "(smoke raced past the restart)")

        live = fetch_coordinator_snapshot(port)
        proc2.send_signal(signal.SIGINT)
        proc2.wait(timeout=30.0)

        replayed = offline_replay_snapshot(wal_dir)
        canonical = dict(sort_keys=True, separators=(",", ":"))
        if (json.dumps(live, **canonical)
                != json.dumps(replayed, **canonical)):
            failures.append(
                "offline WAL replay does not match the live recovered "
                "coordinator registry"
            )
        else:
            ingested = live.get("counters", {}).get(
                "coordinator.reports_ingested", 0.0
            )
            print(f"recovery verified: replay is byte-identical "
                  f"({ingested:.0f} reports ingested)")

        if failures:
            for f in failures:
                print(f"FAIL: {f}")
            return 1
        print("serve smoke OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
