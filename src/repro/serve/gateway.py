"""The cluster gateway: map distribution, REDIRECT steering, STATS fan-out.

The gateway is the cluster's **control plane**, deliberately kept out of
the report data path: clients HELLO in, receive the current
:class:`~repro.serve.shardmap.ShardMap` in WELCOME, and from then on
talk to shards *directly* — the Redis-Cluster model, which is what lets
3 shards sustain ~3x one shard's throughput instead of funneling every
byte through one proxy process.  A client that sends POLL/REPORT/
REPORT_BATCH to the gateway anyway (bootstrapping, or running with a
stale map) gets a typed REDIRECT naming the owning shard and carrying
the fresh map; a STATS request fans out to every live shard and returns
one aggregated coordinator registry (see :func:`aggregate_snapshots`).

Gateway-side operational metrics live under ``cluster.*`` (sessions,
redirects, stats fan-outs, current shard count) — the cluster analog of
the shards' ``serve.*`` registries, and like them excluded from any
determinism contract.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.driver import ServeSession
from repro.serve.shardmap import ShardMap
from repro.serve.wire import (
    CODEC_JSON,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    VersionMismatchError,
    WireError,
    encode_frame,
    read_frame,
)

__all__ = ["GatewayConfig", "GatewayServer", "aggregate_snapshots"]


def aggregate_snapshots(per_shard: Mapping[str, Dict[str, Any]]
                        ) -> Dict[str, Any]:
    """Merge per-shard coordinator registries into one cluster registry.

    A deterministic pure function of its input: shards are folded in
    sorted shard-id order, counters and gauges sum (zone ownership is
    disjoint, so gauges like active-zone counts add), and histograms
    with identical bucket bounds merge element-wise (counts add;
    count/sum add; min/max combine).  Applying this to the live shards'
    STATS snapshots and to offline per-shard WAL replays yields
    byte-identical JSON — the cluster-level recovery guarantee rests on
    exactly that (DESIGN.md §11).

    Raises ValueError when two shards disagree on a histogram's bucket
    bounds (they never should: bounds are compiled in).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for shard_id in sorted(per_shard):
        snap = per_shard[shard_id]
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0) + value
        for key, hist in snap.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "buckets": list(hist.get("buckets", [])),
                    "counts": list(hist.get("counts", [])),
                    "count": hist.get("count", 0),
                    "sum": hist.get("sum", 0.0),
                    "min": hist.get("min"),
                    "max": hist.get("max"),
                }
                continue
            if merged["buckets"] != list(hist.get("buckets", [])):
                raise ValueError(
                    f"histogram {key!r}: bucket bounds differ across "
                    "shards"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"],
                                      hist.get("counts", []))
            ]
            merged["count"] += hist.get("count", 0)
            merged["sum"] += hist.get("sum", 0.0)
            mins = [m for m in (merged["min"], hist.get("min"))
                    if m is not None]
            maxs = [m for m in (merged["max"], hist.get("max"))
                    if m is not None]
            merged["min"] = min(mins) if mins else None
            merged["max"] = max(maxs) if maxs else None
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of the gateway process (control plane only)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Sessions silent for this long are closed.
    idle_timeout_s: float = 30.0
    #: Per-frame payload ceiling (both directions).
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: What a client is told to wait when the map is empty (every shard
    #: down — the only state the gateway cannot route around).
    retry_after_s: float = 0.5
    #: Per-shard timeout of the STATS fan-out.
    stats_timeout_s: float = 10.0


class GatewayServer:
    """Asyncio TCP front door of a shard cluster (no report data path).

    Sessions speak plain JSON (the gateway exchanges a handful of
    control frames per client, so codec negotiation buys nothing);
    binary-preferring clients are answered ``codec: "json"``, which the
    protocol allows — the server picks.
    """

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        shard_map: Optional[ShardMap] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or GatewayConfig()
        self.shard_map = shard_map
        #: cluster.* operational metrics (wall-clock flavored).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._server: Optional[asyncio.AbstractServer] = None
        if shard_map is not None:
            self.metrics.gauge("cluster.shards").set(len(shard_map))

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (0 until :meth:`start` has run)."""
        if self._server is None or not self._server.sockets:
            return 0
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start serving control-plane sessions."""
        cfg = self.config
        self._server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )

    async def stop(self) -> None:
        """Stop accepting and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def set_shard_map(self, shard_map: ShardMap) -> None:
        """Adopt a new map (the supervisor calls this on every change)."""
        self.shard_map = shard_map
        self.metrics.counter("cluster.map_changes").inc()
        self.metrics.gauge("cluster.shards").set(len(shard_map))

    # -- frame I/O -------------------------------------------------------

    def _send(self, writer: asyncio.StreamWriter,
              message: Dict[str, Any]) -> None:
        """Encode and queue one JSON frame on a session's transport."""
        writer.write(encode_frame(message, self.config.max_frame_bytes))

    # -- session handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One gateway session: handshake, then steer until close."""
        cfg = self.config
        self.metrics.counter("cluster.connections_total").inc()
        try:
            hello = await asyncio.wait_for(
                read_frame(reader, cfg.max_frame_bytes), cfg.idle_timeout_s
            )
            if hello is None:
                return
            self._check_hello(hello)
            self.metrics.counter("cluster.sessions_total").inc()
            welcome: Dict[str, Any] = {
                "type": "WELCOME",
                "session_id": 0,
                "v": PROTOCOL_VERSION,
                "codec": CODEC_JSON,
                "shard_id": "gateway",
                "idle_timeout_s": cfg.idle_timeout_s,
                "max_frame_bytes": cfg.max_frame_bytes,
            }
            if self.shard_map is not None:
                welcome["shard_map_version"] = self.shard_map.version
                if hello.get("shard_map_version") != self.shard_map.version:
                    welcome["shard_map"] = self.shard_map.to_wire()
            self._send(writer, welcome)
            await writer.drain()
            await self._session_loop(reader, writer)
        except WireError as exc:
            self.metrics.counter("cluster.protocol_errors").inc()
            try:
                self._send(writer, {"type": "ERROR", "code": exc.code,
                                    "detail": exc.detail})
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except (asyncio.TimeoutError, ConnectionError,
                asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    @staticmethod
    def _check_hello(hello: Dict[str, Any]) -> None:
        """Validate the HELLO frame (typed errors only)."""
        if hello.get("type") != "HELLO":
            raise ProtocolError(f"expected HELLO, got {hello.get('type')!r}")
        if hello.get("v") != PROTOCOL_VERSION:
            raise VersionMismatchError(
                f"gateway speaks v{PROTOCOL_VERSION}, client sent "
                f"v{hello.get('v')!r}"
            )
        if not hello.get("client_id"):
            raise ProtocolError("HELLO without client_id")

    async def _session_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Dispatch control frames until BYE/EOF/idle timeout."""
        cfg = self.config
        while True:
            message = await asyncio.wait_for(
                read_frame(reader, cfg.max_frame_bytes), cfg.idle_timeout_s
            )
            if message is None:
                return
            kind = message["type"]
            if kind == "POLL":
                self._steer(writer, self._poll_position(message),
                            {"seq": message.get("seq")})
            elif kind == "REPORT":
                self._steer(writer, self._report_position(message),
                            {"task_id": (message.get("report") or {}
                                         ).get("task_id")})
            elif kind == "REPORT_BATCH":
                self._steer_batch(writer, message)
            elif kind == "STATS":
                await self._on_stats(writer)
            elif kind == "PING":
                self._send(writer, {"type": "PONG",
                                    "seq": message.get("seq")})
            elif kind == "BYE":
                self._send(writer, {"type": "BYE"})
                await writer.drain()
                return
            else:
                raise ProtocolError(
                    f"{kind!r} frames are not valid client->gateway"
                )
            await writer.drain()

    # -- steering --------------------------------------------------------

    @staticmethod
    def _poll_position(message: Dict[str, Any]):
        """(lat, lon) of a POLL frame (typed error when malformed)."""
        try:
            return float(message["lat"]), float(message["lon"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed POLL payload: {exc}") from None

    @staticmethod
    def _report_position(message: Dict[str, Any]):
        """(lat, lon) of a REPORT frame (typed error when malformed)."""
        payload = message.get("report")
        if not isinstance(payload, dict):
            raise ProtocolError("REPORT without a report object")
        try:
            return float(payload["lat"]), float(payload["lon"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed REPORT payload: {exc}") from None

    def _steer(self, writer: asyncio.StreamWriter, position,
               extra: Dict[str, Any]) -> None:
        """Answer a data-plane frame with REDIRECT (or RETRY if no map)."""
        smap = self.shard_map
        owner = (smap.owner_for_position(*position)
                 if smap is not None else None)
        if owner is None:
            #: Empty/absent map — every shard down (or not yet up).
            #: There is no owner to name, so the only honest answer is
            #: a RETRY: transient, try again once the map repopulates.
            self.metrics.counter("cluster.no_shard_retries").inc()
            reply = {"type": "RETRY",
                     "retry_after_s": self.config.retry_after_s}
            reply.update(extra)
            self._send(writer, reply)
            return
        self.metrics.counter("cluster.redirects").inc()
        reply = {
            "type": "REDIRECT",
            "shard_id": owner.shard_id,
            "host": owner.host,
            "port": owner.port,
            "map_version": smap.version,
            "shard_map": smap.to_wire(),
        }
        reply.update(extra)
        self._send(writer, reply)

    def _steer_batch(self, writer: asyncio.StreamWriter,
                     message: Dict[str, Any]) -> None:
        """REDIRECT a whole REPORT_BATCH to its first report's owner."""
        reports = message.get("reports")
        if not isinstance(reports, list) or not reports:
            raise ProtocolError("REPORT_BATCH without a reports list")
        try:
            seq_lo = int(message["seq_lo"])
        except (KeyError, TypeError, ValueError):
            raise ProtocolError("REPORT_BATCH without integer seq_lo") \
                from None
        first = reports[0]
        if not isinstance(first, dict):
            raise ProtocolError("REPORT_BATCH carries a non-object report")
        try:
            position = float(first["lat"]), float(first["lon"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed REPORT payload: {exc}") from None
        self._steer(writer, position,
                    {"seq_lo": seq_lo,
                     "seq_hi": seq_lo + len(reports) - 1})

    # -- STATS fan-out ---------------------------------------------------

    async def _on_stats(self, writer: asyncio.StreamWriter) -> None:
        """Fan STATS out to every shard; answer one aggregated reply."""
        smap = self.shard_map
        self.metrics.counter("cluster.stats_fanouts").inc()
        per_shard: Dict[str, Dict[str, Any]] = {}
        for info in (smap.shards if smap is not None else ()):
            try:
                reply = await asyncio.wait_for(
                    self._fetch_shard_stats(info),
                    self.config.stats_timeout_s,
                )
                per_shard[info.shard_id] = reply
            except (WireError, ConnectionError, OSError,
                    asyncio.TimeoutError):
                #: A shard mid-death: its zones are being rebalanced;
                #: report what is reachable rather than failing STATS.
                self.metrics.counter("cluster.stats_shard_failures").inc()
        aggregated = aggregate_snapshots({
            shard_id: reply.get("coordinator", {})
            for shard_id, reply in per_shard.items()
        })
        self._send(writer, {
            "type": "STATS_REPLY",
            "coordinator": aggregated,
            "shards": {
                shard_id: {
                    "coordinator": reply.get("coordinator"),
                    "serve": reply.get("serve"),
                    "wal": reply.get("wal"),
                    "sessions_active": reply.get("sessions_active"),
                }
                for shard_id, reply in sorted(per_shard.items())
            },
            "cluster": self.metrics.snapshot(),
            "map_version": smap.version if smap is not None else None,
            "shards_reachable": len(per_shard),
        })

    @staticmethod
    async def _fetch_shard_stats(info) -> Dict[str, Any]:
        """One shard's STATS_REPLY over a throwaway session."""
        async with ServeSession(info.host, info.port,
                                client_id="gateway-stats",
                                networks=[]) as session:
            return await session.stats()
