"""Tests for the declarative alert-rule engine."""

import json
import sys

import pytest

from repro.obs.alerts import AlertEngine, AlertRule, load_rules, parse_rules
from repro.obs.telemetry import Telemetry


def _snap(t, counters=None, gauges=None):
    return {
        "v": 1,
        "seq": 0,
        "t": t,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": {},
    }


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            AlertRule(name="r", metric="m", kind="bogus")

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            AlertRule(name="r", metric="m", op="==")

    def test_absence_ignores_op(self):
        AlertRule(name="r", metric="m", kind="absence", op="whatever")

    def test_for_count_floor(self):
        with pytest.raises(ValueError, match="for_count"):
            AlertRule(name="r", metric="m", for_count=0)


class TestThreshold:
    def test_fires_and_resolves(self):
        tel = Telemetry()
        rule = AlertRule(name="hot", metric="g", op=">", value=10.0)
        engine = AlertEngine([rule], tel)
        assert engine.evaluate(_snap(1.0, gauges={"g": 5.0})) == []
        out = engine.evaluate(_snap(2.0, gauges={"g": 11.0}))
        assert [o["transition"] for o in out] == ["fired"]
        assert engine.active() == [("hot", "g")]
        out = engine.evaluate(_snap(3.0, gauges={"g": 2.0}))
        assert [o["transition"] for o in out] == ["resolved"]
        assert engine.active() == []

    def test_for_count_requires_consecutive_breaches(self):
        tel = Telemetry()
        rule = AlertRule(name="r", metric="g", op=">=", value=1.0, for_count=3)
        engine = AlertEngine([rule], tel)
        assert engine.evaluate(_snap(1.0, gauges={"g": 1.0})) == []
        assert engine.evaluate(_snap(2.0, gauges={"g": 1.0})) == []
        # A dip resets the streak.
        assert engine.evaluate(_snap(3.0, gauges={"g": 0.0})) == []
        assert engine.evaluate(_snap(4.0, gauges={"g": 1.0})) == []
        assert engine.evaluate(_snap(5.0, gauges={"g": 1.0})) == []
        out = engine.evaluate(_snap(6.0, gauges={"g": 1.0}))
        assert [o["transition"] for o in out] == ["fired"]

    def test_emits_events_and_counters(self):
        tel = Telemetry()
        rule = AlertRule(name="r", metric="c", op=">", value=0.0)
        engine = AlertEngine([rule], tel)
        engine.evaluate(_snap(5.0, counters={"c": 1.0}))
        events = tel.events.events()
        assert events[-1]["kind"] == "alert.fired"
        assert events[-1]["t"] == 5.0
        assert events[-1]["rule"] == "r"
        assert tel.metrics.counter_value("obs.alerts_fired") == 1

    def test_pattern_matches_each_metric_independently(self):
        tel = Telemetry()
        rule = AlertRule(name="rej", metric="validator.reject.*", op=">", value=0.0)
        engine = AlertEngine([rule], tel)
        out = engine.evaluate(_snap(1.0, counters={
            "validator.reject.stale": 1.0,
            "validator.reject.range": 0.0,
            "other": 9.0,
        }))
        assert [(o["metric"], o["transition"]) for o in out] == [
            ("validator.reject.stale", "fired")
        ]

    def test_vanished_metric_resolves(self):
        tel = Telemetry()
        rule = AlertRule(name="r", metric="g", op=">", value=0.0)
        engine = AlertEngine([rule], tel)
        engine.evaluate(_snap(1.0, gauges={"g": 1.0}))
        out = engine.evaluate(_snap(2.0, gauges={}))
        assert [o["transition"] for o in out] == ["resolved"]


class TestRate:
    def test_first_snapshot_never_breaches(self):
        tel = Telemetry()
        rule = AlertRule(name="r", metric="c", kind="rate", op=">", value=1.0)
        engine = AlertEngine([rule], tel)
        assert engine.evaluate(_snap(10.0, counters={"c": 100.0})) == []

    def test_rate_of_change_fires(self):
        tel = Telemetry()
        rule = AlertRule(name="r", metric="c", kind="rate", op=">", value=1.0)
        engine = AlertEngine([rule], tel)
        engine.evaluate(_snap(10.0, counters={"c": 0.0}))
        out = engine.evaluate(_snap(20.0, counters={"c": 100.0}))  # 10/s
        assert [o["transition"] for o in out] == ["fired"]
        assert out[0]["value"] == pytest.approx(10.0)

    def test_stall_detection_with_le(self):
        """op '<=' 0.0 on a counter's rate detects 'nothing arriving'."""
        tel = Telemetry()
        rule = AlertRule(
            name="stalled", metric="c", kind="rate", op="<=", value=0.0,
            for_count=2,
        )
        engine = AlertEngine([rule], tel)
        engine.evaluate(_snap(10.0, counters={"c": 5.0}))
        assert engine.evaluate(_snap(20.0, counters={"c": 5.0})) == []
        out = engine.evaluate(_snap(30.0, counters={"c": 5.0}))
        assert [o["transition"] for o in out] == ["fired"]
        out = engine.evaluate(_snap(40.0, counters={"c": 9.0}))
        assert [o["transition"] for o in out] == ["resolved"]


class TestAbsence:
    def test_fires_while_missing_then_resolves(self):
        tel = Telemetry()
        rule = AlertRule(name="up", metric="coordinator.ticks", kind="absence")
        engine = AlertEngine([rule], tel)
        out = engine.evaluate(_snap(1.0))
        assert [o["transition"] for o in out] == ["fired"]
        out = engine.evaluate(_snap(2.0, counters={"coordinator.ticks": 1.0}))
        assert [o["transition"] for o in out] == ["resolved"]


class TestDeterminism:
    def test_identical_snapshot_streams_identical_transitions(self):
        rules = [
            AlertRule(name="a", metric="g", op=">", value=1.0),
            AlertRule(name="b", metric="c*", op=">", value=0.0),
        ]
        snaps = [
            _snap(1.0, counters={"c1": 0.0, "c2": 1.0}, gauges={"g": 0.0}),
            _snap(2.0, counters={"c1": 2.0, "c2": 1.0}, gauges={"g": 5.0}),
            _snap(3.0, counters={"c1": 0.0}, gauges={"g": 0.0}),
        ]
        runs = []
        for _ in range(2):
            engine = AlertEngine(rules, Telemetry())
            for s in snaps:
                engine.evaluate(s)
            runs.append(engine.transitions)
        assert runs[0] == runs[1]
        assert len(runs[0]) > 0


class TestLoading:
    def test_parse_rules_minimal(self):
        rules = parse_rules({"rules": [{"name": "r", "metric": "m"}]})
        assert rules[0].kind == "threshold"
        assert rules[0].for_count == 1

    def test_parse_rules_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown key"):
            parse_rules({"rules": [{"name": "r", "metric": "m", "oops": 1}]})

    def test_parse_rules_requires_list(self):
        with pytest.raises(ValueError, match="'rules' list"):
            parse_rules({"rules": {}})

    def test_parse_rules_missing_name(self):
        with pytest.raises(ValueError, match="missing required key"):
            parse_rules({"rules": [{"metric": "m"}]})

    def test_load_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(
            {"rules": [{"name": "r", "metric": "m", "op": ">=", "value": 2}]}
        ))
        rules = load_rules(path)
        assert rules[0].value == 2.0

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib requires Python 3.11+"
    )
    def test_load_toml(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\nname = "r"\nmetric = "m"\nvalue = 3.5\n'
        )
        rules = load_rules(path)
        assert rules[0].value == 3.5

    def test_example_rules_parse(self):
        import os

        here = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        rules = load_rules(os.path.join(here, "examples", "alert_rules.json"))
        assert {r.kind for r in rules} == {"rate", "absence", "threshold"}
        if sys.version_info >= (3, 11):
            toml_rules = load_rules(
                os.path.join(here, "examples", "alert_rules.toml")
            )
            assert [
                (r.name, r.metric, r.kind, r.op, r.value, r.for_count,
                 r.severity) for r in toml_rules
            ] == [
                (r.name, r.metric, r.kind, r.op, r.value, r.for_count,
                 r.severity) for r in rules
            ]
