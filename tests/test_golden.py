"""Golden regression pins.

The reproducibility promise: the same seeds reproduce every number
bit-for-bit.  These tests pin a handful of exact model outputs at fixed
seeds so that *any* accidental change to the ground-truth models, RNG
plumbing, or measurement arithmetic shows up as a failure — and a
deliberate change forces a conscious update of these constants (and a
re-read of EXPERIMENTS.md, whose numbers would shift too).
"""

import numpy as np
import pytest

from repro.network.channel import MeasurementChannel
from repro.radio.technology import NetworkId

REL = 1e-9  # bit-for-bit up to float printing


class TestLinkStateGolden:
    POINT_OFFSET = (1234.0, -567.0)
    AT = 12345.0
    EXPECTED = {
        NetworkId.NET_A: (1031793.6044079768, 0.11665357488343824),
        NetworkId.NET_B: (911238.847447598, 0.11673775164950882),
        NetworkId.NET_C: (1358898.1526179572, 0.11483660815931246),
    }

    def test_link_states_pinned(self, landscape):
        point = landscape.study_area.anchor.offset(*self.POINT_OFFSET)
        for net, (downlink, rtt) in self.EXPECTED.items():
            state = landscape.link_state(net, point, self.AT)
            assert state.downlink_bps == pytest.approx(downlink, rel=REL)
            assert state.rtt_s == pytest.approx(rtt, rel=REL)


class TestMeasurementGolden:
    def test_udp_train_pinned(self, landscape):
        point = landscape.study_area.anchor.offset(1234.0, -567.0)
        channel = MeasurementChannel(
            landscape, NetworkId.NET_B, np.random.default_rng(42)
        )
        result = channel.udp_train(
            point, 999.0, n_packets=50, inter_packet_delay_s=0.0005
        )
        # Re-pinned when udp_train moved to pre-drawn RNG blocks (the
        # draw order changed; agreement with the original per-packet
        # implementation is distribution-level, covered by the
        # equivalence tests).  udp_train_reference still reproduces the
        # previous pin, 787234.2290743778.
        assert result.throughput_bps == pytest.approx(842948.3730709758, rel=REL)
        assert result.loss_rate == 0.0

    def test_udp_train_reference_pinned(self, landscape):
        point = landscape.study_area.anchor.offset(1234.0, -567.0)
        channel = MeasurementChannel(
            landscape, NetworkId.NET_B, np.random.default_rng(42)
        )
        result = channel.udp_train_reference(
            point, 999.0, n_packets=50, inter_packet_delay_s=0.0005
        )
        # The original per-packet implementation (and its exact
        # scalar-field link query) is frozen: this is the seed repo's
        # original udp_train pin, byte for byte.
        assert result.throughput_bps == pytest.approx(787234.2290743778, rel=REL)
        assert result.loss_rate == 0.0

    def test_tcp_download_pinned(self, landscape):
        point = landscape.study_area.anchor.offset(1234.0, -567.0)
        channel = MeasurementChannel(
            landscape, NetworkId.NET_B, np.random.default_rng(42)
        )
        result = channel.tcp_download(point, 999.0, size_bytes=500_000)
        assert result.duration_s == pytest.approx(4.335648295502714, rel=REL)


class TestWorldGolden:
    def test_same_seed_same_world_twice(self):
        from repro.radio.network import build_landscape

        a = build_landscape(seed=99, include_road=False, include_nj=False)
        b = build_landscape(seed=99, include_road=False, include_nj=False)
        p = a.study_area.anchor.offset(800.0, 200.0)
        for net in a.network_ids():
            sa = a.link_state(net, p, 777.0)
            sb = b.link_state(net, p, 777.0)
            assert sa.downlink_bps == sb.downlink_bps
            assert sa.rtt_s == sb.rtt_s
            assert sa.jitter_std_s == sb.jitter_std_s

    def test_different_seed_different_world(self):
        from repro.radio.network import build_landscape

        a = build_landscape(seed=99, include_road=False, include_nj=False)
        b = build_landscape(seed=100, include_road=False, include_nj=False)
        p = a.study_area.anchor.offset(800.0, 200.0)
        assert (
            a.link_state(NetworkId.NET_B, p, 777.0).downlink_bps
            != b.link_state(NetworkId.NET_B, p, 777.0).downlink_bps
        )
