"""Radio-access technology specifications (paper Table 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NetworkId(str, enum.Enum):
    """The three monitored (anonymized) nation-wide carriers."""

    NET_A = "NetA"
    NET_B = "NetB"
    NET_C = "NetC"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


@dataclass(frozen=True)
class RadioTechnology:
    """Capabilities of a cellular radio-access technology.

    Rates are the nominal peaks from the paper's Table 1; real-world
    sustained throughput is far below these caps and is produced by the
    spatial/temporal models — the caps only bound it.
    """

    name: str
    max_downlink_bps: float
    max_uplink_bps: float
    # Base one-way air-interface latency contribution, seconds.  EV-DO
    # Rev.A and HSPA both sit around 50-70 ms RTT at the radio leg.
    base_air_rtt_s: float

    def clamp_downlink(self, rate_bps: float) -> float:
        """Clamp a modeled rate to the technology's downlink peak."""
        return max(0.0, min(rate_bps, self.max_downlink_bps))

    def clamp_uplink(self, rate_bps: float) -> float:
        """Clamp a modeled rate to the technology's uplink peak."""
        return max(0.0, min(rate_bps, self.max_uplink_bps))


HSPA = RadioTechnology(
    name="GSM HSPA",
    max_downlink_bps=7.2e6,
    max_uplink_bps=1.2e6,
    base_air_rtt_s=0.060,
)

EVDO_REV_A = RadioTechnology(
    name="CDMA2000 1xEV-DO Rev.A",
    max_downlink_bps=3.1e6,
    max_uplink_bps=1.8e6,
    base_air_rtt_s=0.065,
)

#: Technology used by each carrier, per Table 1 of the paper.
TECHNOLOGY_BY_NETWORK = {
    NetworkId.NET_A: HSPA,
    NetworkId.NET_B: EVDO_REV_A,
    NetworkId.NET_C: EVDO_REV_A,
}
