"""Analysis helpers: the data behind each paper figure and table.

Benchmarks and examples share these builders so that "regenerate Fig 4"
is one function call returning plain data (series, rows) plus a text
renderer for terminal output.
"""

from repro.analysis.tables import TextTable
from repro.analysis.spots import select_representative_spot, spot_flatness
from repro.analysis.figures import (
    relstd_cdf_by_radius,
    speed_latency_analysis,
    wiscape_error_cdf,
    zone_throughput_map,
)

__all__ = [
    "TextTable",
    "relstd_cdf_by_radius",
    "speed_latency_analysis",
    "wiscape_error_cdf",
    "zone_throughput_map",
    "select_representative_spot",
    "spot_flatness",
]
