"""Per-carrier ground-truth models and the combined landscape.

:class:`CellularNetwork` answers the single question every other layer
asks: *what does carrier X's link look like at point p at time t?* — as a
:class:`LinkState` (sustained capacity, RTT, jitter, loss, availability).
:class:`Landscape` bundles the three carriers plus shared geography
(study area, roads, stadium, failure patches) into one queryable world.

Parameter values are tuned to the paper's published statistics: sustained
rates and jitter per network/region from Tables 3-4, base RTT ~113 ms
(Fig 10), near-zero loss, and NJ roughly 1.8-2.2x faster than Madison for
NetB/NetC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geo.coords import GeoPoint
from repro.geo.regions import (
    RoadStretch,
    StudyArea,
    madison_chicago_road,
    madison_study_area,
    new_jersey_spots,
)
from repro.radio.basestation import (
    BaseStation,
    place_along_road,
    place_base_stations,
)
from repro.radio.events import LoadEvent
from repro.radio.field import SpatialField, value_noise
from repro.radio.technology import (
    EVDO_REV_A,
    HSPA,
    NetworkId,
    RadioTechnology,
)
from repro.radio.temporal import TemporalParams, TemporalProcess
from repro.sim.rng import RngStreams, derive_seed


@dataclass(frozen=True)
class LinkState:
    """Ground-truth link characteristics for one carrier at one (p, t).

    ``downlink_bps``/``uplink_bps`` are sustainable UDP saturation rates;
    TCP achieves slightly less (the transport model accounts for that).
    ``available`` is False when the link is blacked out (persistent
    failure patches); pings sent then are lost.
    """

    network: NetworkId
    downlink_bps: float
    uplink_bps: float
    rtt_s: float
    jitter_std_s: float
    loss_rate: float
    available: bool = True


@dataclass(frozen=True)
class FailurePatch:
    """A small area with a persistently sick link (paper Fig 9).

    Inside the patch the link suffers repeated ping blackouts and large
    slow swings in capacity — the "zones with at least one failed ping
    per day for 20+ days" whose TCP relative standard deviation the paper
    shows is dramatically higher than healthy zones.
    """

    patch_id: int
    center: GeoPoint
    radius_m: float
    blackout_prob: float = 0.08
    blackout_bin_s: float = 120.0
    swing_amp: float = 0.45
    swing_bin_s: float = 600.0

    def contains(self, point: GeoPoint) -> bool:
        return self.center.distance_to(point) <= self.radius_m


@dataclass
class RegionBinding:
    """One region's flavor of a network: field + temporal + scales."""

    name: str
    anchor: GeoPoint
    radius_m: Optional[float]  # None marks the fallback (road corridor)
    spatial: SpatialField
    temporal: TemporalProcess
    rate_scale: float = 1.0
    jitter_scale: float = 1.0

    def matches(self, point: GeoPoint) -> bool:
        if self.radius_m is None:
            return True
        return self.anchor.distance_to(point) <= self.radius_m


@dataclass(frozen=True)
class NetworkParams:
    """Tunable knobs for one carrier."""

    network: NetworkId
    technology: RadioTechnology
    base_downlink_bps: float
    base_uplink_bps: float
    base_rtt_s: float
    base_jitter_s: float
    base_loss: float = 0.0005
    # Exponent coupling spatial quality to latency: better-covered spots
    # see proportionally lower RTT.
    rtt_spatial_exp: float = 0.8
    # Relative std of the fast per-bin RTT noise.
    rtt_fast_std: float = 0.06


class CellularNetwork:
    """One carrier's ground truth across all study regions."""

    def __init__(
        self,
        params: NetworkParams,
        bindings: Sequence[RegionBinding],
        failure_patches: Sequence[FailurePatch] = (),
        events: Sequence[LoadEvent] = (),
        seed: int = 0,
    ):
        if not bindings:
            raise ValueError("need at least one region binding")
        if not any(b.radius_m is None for b in bindings):
            # Ensure a total function over the globe: make the last
            # binding the fallback.
            bindings = list(bindings)
            last = bindings[-1]
            bindings[-1] = RegionBinding(
                name=last.name,
                anchor=last.anchor,
                radius_m=None,
                spatial=last.spatial,
                temporal=last.temporal,
                rate_scale=last.rate_scale,
                jitter_scale=last.jitter_scale,
            )
        self.params = params
        self.bindings = list(bindings)
        self.failure_patches = list(failure_patches)
        self.events = list(events)
        self.seed = int(seed)

    @property
    def network_id(self) -> NetworkId:
        return self.params.network

    def add_event(self, event: LoadEvent) -> None:
        """Attach a scheduled load event (e.g. the stadium game)."""
        self.events.append(event)

    def binding_for(self, point: GeoPoint) -> RegionBinding:
        """The region binding governing ``point``."""
        for b in self.bindings:
            if b.radius_m is not None and b.matches(point):
                return b
        for b in self.bindings:
            if b.radius_m is None:
                return b
        return self.bindings[-1]  # pragma: no cover - guarded in __init__

    def _patch_at(self, point: GeoPoint) -> Optional[FailurePatch]:
        for patch in self.failure_patches:
            if patch.contains(point):
                return patch
        return None

    def _event_factors(self, point: GeoPoint, t: float):
        lat = 1.0
        cap = 1.0
        for ev in self.events:
            lat *= ev.latency_factor(self.network_id, point, t)
            cap *= ev.capacity_factor(self.network_id, point, t)
        return lat, cap

    def link_state(self, point: GeoPoint, t: float) -> LinkState:
        """Ground-truth link state for this carrier at ``point``, ``t``."""
        b = self.binding_for(point)
        spatial = b.spatial.value(point)
        smooth = b.spatial.smooth(point)
        temporal = b.temporal.multiplier(t)
        ev_lat, ev_cap = self._event_factors(point, t)

        capacity = (
            self.params.base_downlink_bps
            * b.rate_scale
            * spatial
            * temporal
            * ev_cap
        )
        uplink = (
            self.params.base_uplink_bps * b.rate_scale * spatial * temporal * ev_cap
        )

        load = b.temporal.load(t)
        rtt = (
            self.params.base_rtt_s
            * smooth ** (-self.params.rtt_spatial_exp)
            * (0.7 + 0.3 * load)
            * ev_lat
        )
        # Fast RTT noise, iid across 5 s bins, deterministic in (seed, t).
        rtt_bin = int(t // 5.0)
        rtt *= max(
            0.5,
            1.0
            + self.params.rtt_fast_std
            * value_noise(self.seed ^ 0x5A5A, rtt_bin, 0, 1.0),
        )

        jitter = self.params.base_jitter_s * b.jitter_scale * (0.8 + 0.4 * load)
        loss = self.params.base_loss * (1.0 + 3.0 * (ev_lat - 1.0))
        available = True

        patch = self._patch_at(point)
        if patch is not None:
            swing_bin = int(t // patch.swing_bin_s)
            swing = value_noise(
                self.seed + patch.patch_id * 7919, swing_bin, patch.patch_id, 1.0
            )
            capacity *= max(0.15, 1.0 + patch.swing_amp * 1.6 * swing)
            loss = min(0.05, loss + 0.01)
            blackout_bin = int(t // patch.blackout_bin_s)
            u = (
                value_noise(
                    self.seed + patch.patch_id * 104729,
                    blackout_bin,
                    1,
                    1.0,
                )
                + 1.0
            ) / 2.0
            if u < patch.blackout_prob:
                available = False

        tech = self.params.technology
        return LinkState(
            network=self.network_id,
            downlink_bps=tech.clamp_downlink(capacity),
            uplink_bps=tech.clamp_uplink(uplink),
            rtt_s=max(0.02, rtt),
            jitter_std_s=max(1e-4, jitter),
            loss_rate=min(0.10, max(0.0, loss)),
            available=available,
        )


class Landscape:
    """The full synthetic world: three carriers plus shared geography."""

    def __init__(
        self,
        networks: Dict[NetworkId, CellularNetwork],
        study_area: StudyArea,
        road: Optional[RoadStretch] = None,
        stadium: Optional[GeoPoint] = None,
        seed: int = 0,
    ):
        self.networks = dict(networks)
        self.study_area = study_area
        self.road = road
        self.stadium = stadium
        self.seed = seed

    def network(self, net: NetworkId) -> CellularNetwork:
        return self.networks[net]

    def network_ids(self) -> List[NetworkId]:
        return sorted(self.networks.keys(), key=lambda n: n.value)

    def link_state(self, net: NetworkId, point: GeoPoint, t: float) -> LinkState:
        """Ground truth for carrier ``net`` at ``point`` and time ``t``."""
        return self.networks[net].link_state(point, t)

    def add_event(self, event: LoadEvent, nets: Optional[Sequence[NetworkId]] = None) -> None:
        """Attach a load event to some (default: all) carriers."""
        for net in nets or self.network_ids():
            self.networks[net].add_event(event)


# ---------------------------------------------------------------------------
# World construction
# ---------------------------------------------------------------------------

#: Sustained-rate and latency presets per carrier, tuned to paper Tables 3-4.
_DEFAULT_PARAMS: Dict[NetworkId, NetworkParams] = {
    NetworkId.NET_A: NetworkParams(
        network=NetworkId.NET_A,
        technology=HSPA,
        base_downlink_bps=1.42e6,
        base_uplink_bps=0.55e6,
        base_rtt_s=0.105,
        # IPDV of consecutive paced packets reports ~1.6x the per-packet
        # delay std; bases are scaled so *measured* jitter matches the
        # paper (NetA ~7.4 ms, NetB ~3.0 ms, NetC ~3.4 ms in Madison).
        base_jitter_s=0.0124,
    ),
    NetworkId.NET_B: NetworkParams(
        network=NetworkId.NET_B,
        technology=EVDO_REV_A,
        base_downlink_bps=1.02e6,
        base_uplink_bps=0.62e6,
        base_rtt_s=0.113,
        base_jitter_s=0.0029,
    ),
    NetworkId.NET_C: NetworkParams(
        network=NetworkId.NET_C,
        technology=EVDO_REV_A,
        base_downlink_bps=1.12e6,
        base_uplink_bps=0.60e6,
        base_rtt_s=0.121,
        base_jitter_s=0.0037,
    ),
}

#: NJ sustained rates are ~1.8-2.2x Madison's for NetB/NetC (Table 3).
_NJ_RATE_SCALE = {
    NetworkId.NET_A: 1.0,
    NetworkId.NET_B: 1.90,
    NetworkId.NET_C: 2.10,
}
_NJ_JITTER_SCALE = {
    NetworkId.NET_A: 1.0,
    NetworkId.NET_B: 1.39,
    NetworkId.NET_C: 0.73,
}

#: Sustained-rate scaling on the intercity road corridor.  The HSPA
#: carrier's rural corridor coverage is thinner than in the city, which
#: levels the three carriers on the road and produces the heavily
#: crossing per-zone winners of the paper's Fig 13.
_ROAD_RATE_SCALE = {
    NetworkId.NET_A: 0.80,
    NetworkId.NET_B: 1.02,
    NetworkId.NET_C: 0.98,
}


def build_landscape(
    seed: int = 7,
    include_road: bool = True,
    include_nj: bool = True,
    city_stations_per_network: int = 10,
    failure_patch_count: int = 16,
    networks: Optional[Sequence[NetworkId]] = None,
) -> Landscape:
    """Construct the full paper-like world, deterministically from ``seed``.

    The returned landscape has the three carriers over a Madison-like
    155 km^2 study area, optionally the 240 km road corridor and the NJ
    spot regions, a stadium location for the football-game event (the
    event itself is attached by callers/benches that need it), and
    ``failure_patch_count`` sick patches for NetB (the Standalone
    dataset, from which Fig 9 is computed, is NetB-only).
    """
    streams = RngStreams(seed)
    area = madison_study_area()
    road = madison_chicago_road() if include_road else None
    nj = new_jersey_spots() if include_nj else []
    nets = list(networks) if networks else list(_DEFAULT_PARAMS.keys())

    # Calibration points shared across networks (field normalization).
    city_points = area.grid_points(spacing_m=800.0)
    road_points = road.sample_every(2000.0) if road else []

    built: Dict[NetworkId, CellularNetwork] = {}
    for net in nets:
        params = _DEFAULT_PARAMS[net]
        rng = streams.get(f"stations:{net.value}")
        bindings: List[RegionBinding] = []

        city_stations = place_base_stations(
            area.anchor, area.radius_m, city_stations_per_network, rng
        )
        city_field = SpatialField(
            stations=city_stations,
            origin=area.anchor,
            seed=derive_seed(seed, f"texture:{net.value}:city"),
        )
        city_field.calibrate(city_points)
        bindings.append(
            RegionBinding(
                name="madison",
                anchor=area.anchor,
                radius_m=area.radius_m + 2000.0,
                spatial=city_field,
                temporal=TemporalProcess(
                    TemporalParams.madison_like(),
                    derive_seed(seed, f"temporal:{net.value}:madison"),
                ),
            )
        )

        for region in nj:
            nj_stations = place_base_stations(
                region.anchor, 4000.0, 7,
                streams.get(f"njstations:{net.value}:{region.name}"),
                mean_range_m=2500.0,
            )
            nj_field = SpatialField(
                stations=nj_stations,
                origin=region.anchor,
                seed=derive_seed(seed, f"texture:{net.value}:{region.name}"),
            )
            nj_field.calibrate(
                [region.anchor.offset(dx, dy) for dx in (-2000.0, 0.0, 2000.0) for dy in (-2000.0, 0.0, 2000.0)]
            )
            bindings.append(
                RegionBinding(
                    name=region.name,
                    anchor=region.anchor,
                    radius_m=5000.0,
                    spatial=nj_field,
                    temporal=TemporalProcess(
                        TemporalParams.new_jersey_like(),
                        derive_seed(seed, f"temporal:{net.value}:{region.name}"),
                    ),
                    rate_scale=_NJ_RATE_SCALE[net],
                    jitter_scale=_NJ_JITTER_SCALE[net],
                )
            )

        if road is not None:
            road_stations = place_along_road(
                road.waypoints, 5000.0, streams.get(f"roadstations:{net.value}")
            )
            road_field = SpatialField(
                stations=road_stations,
                origin=area.anchor,
                seed=derive_seed(seed, f"texture:{net.value}:road"),
            )
            road_field.calibrate(road_points)
            bindings.append(
                RegionBinding(
                    name="road",
                    anchor=area.anchor,
                    radius_m=None,  # fallback region
                    spatial=road_field,
                    temporal=TemporalProcess(
                        TemporalParams.madison_like(),
                        derive_seed(seed, f"temporal:{net.value}:road"),
                    ),
                    rate_scale=_ROAD_RATE_SCALE[net],
                )
            )
        else:
            # Make the city binding the fallback if there is no road.
            last = bindings[0]
            bindings.append(
                RegionBinding(
                    name=last.name,
                    anchor=last.anchor,
                    radius_m=None,
                    spatial=last.spatial,
                    temporal=last.temporal,
                    rate_scale=last.rate_scale,
                    jitter_scale=last.jitter_scale,
                )
            )

        patches: List[FailurePatch] = []
        if net is NetworkId.NET_B and failure_patch_count > 0:
            prng = streams.get("failure-patches")
            from repro.geo.coords import destination_point

            for i in range(failure_patch_count):
                r = area.radius_m * float(np.sqrt(prng.uniform(0.04, 0.95)))
                theta = float(prng.uniform(0.0, 360.0))
                patches.append(
                    FailurePatch(
                        patch_id=i,
                        center=destination_point(area.anchor, theta, r),
                        radius_m=float(prng.uniform(250.0, 450.0)),
                    )
                )

        built[net] = CellularNetwork(
            params=params,
            bindings=bindings,
            failure_patches=patches,
            seed=derive_seed(seed, f"net:{net.value}"),
        )

    stadium = area.anchor.offset(-1800.0, 600.0)
    return Landscape(
        networks=built,
        study_area=area,
        road=road,
        stadium=stadium,
        seed=seed,
    )
