"""WiScape configuration.

One dataclass holding every knob the paper's design sections justify,
with the paper's chosen values as defaults: 250 m zones, ~100-sample
budgets bounded by NKLD convergence, epochs from Allan deviation
(default 30 minutes until enough history accumulates), and 2-sigma
change detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.clients.protocol import MeasurementType


@dataclass(frozen=True)
class WiScapeConfig:
    """Framework parameters (paper section 3 defaults)."""

    # -- space (section 3.1) -------------------------------------------
    zone_radius_m: float = 250.0

    # -- time (section 3.2) --------------------------------------------
    #: Epoch used for a zone until enough history exists to run the
    #: Allan-deviation selection.
    default_epoch_s: float = 30.0 * 60.0
    #: Bounds on what the Allan search may choose.
    min_epoch_s: float = 5.0 * 60.0
    max_epoch_s: float = 4.0 * 3600.0
    #: Re-run the epoch selection after this many closed epochs.
    epochs_between_recalibration: int = 12

    # -- sampling (section 3.3) ------------------------------------------
    #: Target measurement samples per (zone, epoch) before history
    #: allows an NKLD-tuned budget.  The paper's "around 100".
    default_sample_budget: int = 100
    #: Bounds on the NKLD-derived budget.
    min_sample_budget: int = 30
    max_sample_budget: int = 200
    #: Distributions closer than this NKLD are "similar" (paper: 0.1).
    nkld_threshold: float = 0.1

    # -- scheduling (section 3.4) ----------------------------------------
    #: Coordinator tick interval: how often task probabilities refresh.
    tick_interval_s: float = 60.0
    #: Measurement kinds the coordinator requests from clients.
    task_kinds: Tuple[MeasurementType, ...] = (
        MeasurementType.UDP_TRAIN,
        MeasurementType.PING,
    )
    #: Per-task parameter defaults keyed by kind value.
    udp_packets_per_task: int = 50
    ping_count_per_task: int = 10

    # -- change detection (section 3.4) ----------------------------------
    #: Alert when a new epoch estimate deviates from the previous one by
    #: more than this many previous-epoch standard deviations.
    change_sigma: float = 2.0

    def __post_init__(self) -> None:
        if self.zone_radius_m <= 0:
            raise ValueError("zone_radius_m must be positive")
        if not self.min_epoch_s <= self.default_epoch_s <= self.max_epoch_s:
            raise ValueError("default_epoch_s outside [min, max] bounds")
        if not (
            0 < self.min_sample_budget
            <= self.default_sample_budget
            <= self.max_sample_budget
        ):
            raise ValueError("sample budgets must satisfy 0 < min <= default <= max")
        if self.nkld_threshold <= 0:
            raise ValueError("nkld_threshold must be positive")
        if self.tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if self.change_sigma <= 0:
            raise ValueError("change_sigma must be positive")
