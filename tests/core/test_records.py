"""Tests for zone records and epoch bookkeeping."""

import pytest

from repro.clients.protocol import MeasurementType
from repro.core.records import ZoneRecord, ZoneRecordStore
from repro.radio.technology import NetworkId

KEY = ((0, 0), NetworkId.NET_B, MeasurementType.UDP_TRAIN)


def _record(epoch_s=600.0, budget=10):
    return ZoneRecord(key=KEY, epoch_s=epoch_s, sample_budget=budget)


class TestAccumulation:
    def test_samples_needed_decreases(self):
        rec = _record(budget=10)
        assert rec.samples_needed() == 10
        rec.add_samples([1.0, 2.0, 3.0], at_s=5.0)
        assert rec.samples_needed() == 7

    def test_nan_samples_dropped(self):
        rec = _record()
        rec.add_samples([1.0, float("nan"), 2.0], at_s=0.0)
        assert len(rec.open_samples) == 2

    def test_sample_pool_capped(self):
        rec = _record()
        rec.sample_pool_cap = 50
        rec.add_samples([1.0] * 200, at_s=0.0)
        assert len(rec.sample_pool) == 50

    def test_series_rolls(self):
        rec = _record()
        rec.series_cap = 100
        for i in range(150):
            rec.note_measurement(float(i), float(i))
        assert len(rec.series_values) <= 100
        assert rec.series_values[-1] == 149.0


class TestEpochClose:
    def test_not_before_boundary(self):
        rec = _record(epoch_s=600.0)
        rec.add_samples([1.0], at_s=10.0)
        assert rec.maybe_close_epoch(599.0) is None

    def test_close_publishes_estimate(self):
        rec = _record(epoch_s=600.0)
        rec.add_samples([1.0, 2.0, 3.0], at_s=10.0)
        est = rec.maybe_close_epoch(600.0)
        assert est is not None
        assert est.mean == pytest.approx(2.0)
        assert est.n_samples == 3
        assert est.start_s == 0.0
        assert est.end_s == 600.0
        assert rec.open_samples == []

    def test_empty_epoch_closes_silently(self):
        rec = _record(epoch_s=600.0)
        assert rec.maybe_close_epoch(600.0) is None
        assert rec.epoch_start_s == 600.0

    def test_multiple_idle_epochs_skipped(self):
        rec = _record(epoch_s=600.0)
        rec.maybe_close_epoch(3000.0)
        assert rec.epoch_start_s == 3000.0
        assert rec.epoch_index == 5

    def test_estimate_series(self):
        rec = _record(epoch_s=100.0)
        rec.add_samples([2.0], at_s=50.0)
        rec.maybe_close_epoch(100.0)
        rec.add_samples([4.0], at_s=150.0)
        rec.maybe_close_epoch(200.0)
        series = rec.estimate_series()
        assert [v for _, v in series] == [2.0, 4.0]
        assert [t for t, _ in series] == [50.0, 150.0]

    def test_relative_std(self):
        rec = _record(epoch_s=100.0)
        rec.add_samples([1.0, 3.0], at_s=0.0)
        est = rec.maybe_close_epoch(100.0)
        assert est.relative_std == pytest.approx(0.5)


class TestMutation:
    def test_set_epoch_duration(self):
        rec = _record()
        rec.set_epoch_duration(1200.0)
        assert rec.epoch_s == 1200.0
        with pytest.raises(ValueError):
            rec.set_epoch_duration(0.0)

    def test_set_sample_budget(self):
        rec = _record()
        rec.set_sample_budget(55)
        assert rec.sample_budget == 55
        with pytest.raises(ValueError):
            rec.set_sample_budget(0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ZoneRecord(key=KEY, epoch_s=0.0, sample_budget=10)
        with pytest.raises(ValueError):
            ZoneRecord(key=KEY, epoch_s=10.0, sample_budget=0)


class TestStore:
    def test_get_creates_aligned(self):
        store = ZoneRecordStore(default_epoch_s=600.0, default_budget=100)
        rec = store.get(KEY, now_s=1500.0)
        assert rec.epoch_start_s == 1200.0  # aligned to boundary

    def test_get_idempotent(self):
        store = ZoneRecordStore(default_epoch_s=600.0, default_budget=100)
        assert store.get(KEY, 0.0) is store.get(KEY, 999.0)

    def test_peek_does_not_create(self):
        store = ZoneRecordStore(default_epoch_s=600.0, default_budget=100)
        assert store.peek(KEY) is None
        assert KEY not in store
        store.get(KEY)
        assert KEY in store
        assert len(store) == 1
