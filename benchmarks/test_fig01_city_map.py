"""Figure 1: city-wide TCP throughput snapshot.

The paper's opening figure: the Standalone dataset binned into 250 m
zones across the ~155 km^2 study area, each dot showing a zone's mean
1 MB-download TCP throughput and its variance shading.
"""

import numpy as np

from repro.analysis.figures import zone_throughput_map
from repro.analysis.tables import TextTable
from repro.geo.zones import ZoneGrid
from repro.radio.technology import NetworkId


def test_fig01_city_throughput_map(standalone_trace, landscape, benchmark):
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)

    entries = benchmark.pedantic(
        zone_throughput_map,
        args=(standalone_trace, grid, NetworkId.NET_B),
        kwargs={"min_samples": 50},
        rounds=1, iterations=1,
    )

    means = np.array([e.mean_bps for e in entries]) / 1e3
    rels = np.array([e.rel_std for e in entries])

    table = TextTable(
        ["statistic", "value"], formats=["", ".1f"]
    )
    table.add_row("zones mapped", float(len(entries)))
    table.add_row("mean TCP tput (Kbps)", float(means.mean()))
    table.add_row("min zone mean (Kbps)", float(means.min()))
    table.add_row("max zone mean (Kbps)", float(means.max()))
    table.add_row("median rel std (%)", float(np.median(rels) * 100.0))
    print("\nFig 1 — city-wide TCP throughput map (NetB, 250 m zones)")
    print(table.render())
    sample = TextTable(
        ["zone", "lat", "lon", "mean Kbps", "rel std"],
        formats=["", ".4f", ".4f", ".0f", ".3f"],
    )
    for e in entries[:10]:
        sample.add_row(str(e.zone_id), e.center.lat, e.center.lon, e.mean_bps / 1e3, e.rel_std)
    print(sample.render())

    # Shape: a city-wide map of >100 zones; zone means within the
    # EV-DO envelope; spatial variation across the city is substantial
    # (coverage differs zone to zone), as in the paper's Fig 1 spread.
    assert len(entries) > 100
    assert 300.0 < means.mean() < 3100.0
    assert means.max() > 1.5 * means.min()
