"""Telemetry determinism: identical seeded runs, identical artifacts.

The observability layer must never perturb or be perturbed by the
simulation: two runs with the same seeds produce byte-identical
``events.jsonl``/``metrics.json``/``manifest.json`` (span timings are
host-dependent by nature and live only in ``spans.json``), and running
with telemetry enabled must not change what the simulation computes.
"""

from repro.clients.agent import ClientAgent
from repro.clients.device import Device, DeviceCategory
from repro.core.controller import MeasurementCoordinator
from repro.geo.zones import ZoneGrid
from repro.mobility.routes import city_bus_routes
from repro.mobility.vehicles import TransitBus
from repro.obs import RunManifest, Telemetry, use_telemetry
from repro.radio.network import build_landscape
from repro.radio.technology import NetworkId
from repro.sim.engine import EventEngine


def _monitor_run(out_dir, hours=0.5, telemetry_enabled=True):
    """One small seeded monitor run; returns the coordinator."""
    telemetry = Telemetry(enabled=telemetry_enabled)
    with use_telemetry(telemetry):
        landscape = build_landscape(seed=7, include_road=False, include_nj=False)
        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        coordinator = MeasurementCoordinator(grid, seed=1, telemetry=telemetry)
        routes = city_bus_routes(landscape.study_area, count=8)
        nets = [NetworkId.NET_B, NetworkId.NET_C]
        for b in range(2):
            bus = TransitBus(bus_id=b, routes=routes, seed=b)
            device = Device(f"bus-{b}", DeviceCategory.SBC_PCMCIA, nets, seed=b)
            coordinator.register_client(
                ClientAgent(f"bus-{b}", device, bus, landscape, seed=b)
            )
        start = 6.0 * 3600.0
        engine = EventEngine()
        engine.clock.reset(start)
        until = start + hours * 3600.0
        coordinator.attach(engine, until=until)
        engine.run(until=until)
        if out_dir is not None:
            landscape.publish_cache_metrics(telemetry)
            manifest = RunManifest(
                "monitor", seed=7, gen_seed=1, config=coordinator.config,
                zone_grid={"radius_m": 250.0},
            )
            telemetry.write_artifacts(out_dir, manifest=manifest)
    return coordinator


class TestDeterminism:
    def test_identical_runs_identical_artifacts(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir()
        b.mkdir()
        _monitor_run(a)
        _monitor_run(b)
        for name in ("events.jsonl", "metrics.json", "manifest.json"):
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_telemetry_does_not_perturb_simulation(self, tmp_path):
        """Enabled vs disabled telemetry: same simulation outcome."""
        out = tmp_path / "tel"
        out.mkdir()
        with_tel = _monitor_run(out, telemetry_enabled=True)
        without = _monitor_run(None, telemetry_enabled=False)
        assert with_tel.stats == without.stats
        assert len(with_tel.store) == len(without.store)
        assert len(with_tel.alerts) == len(without.alerts)

    def test_disabled_run_still_exposes_stats_view(self):
        coordinator = _monitor_run(None, telemetry_enabled=False)
        assert coordinator.stats.ticks > 0
        assert coordinator.stats.reports_ingested > 0
