"""Ablation: estimation error vs per-epoch sample budget.

The paper settles on ~100 samples per (zone, epoch) via NKLD
convergence.  This ablation sweeps the budget and shows the error knee:
accuracy improves steeply up to several tens of samples and flattens
near the paper's choice — more samples buy little beyond ~100.

The error core is :func:`repro.sweep.scenarios.sample_budget_errors`
(shared with the ``ablation-budget`` sweep preset); this benchmark runs
it at paper scale and asserts the knee.
"""

import numpy as np

from repro.analysis.tables import TextTable
from repro.sweep.scenarios import SAMPLE_BUDGETS, sample_budget_errors


def _run(standalone_trace, origin):
    return {
        budget: sample_budget_errors(standalone_trace, origin, budget)
        for budget in SAMPLE_BUDGETS
    }


def test_ablation_sample_budget(standalone_trace, landscape, benchmark):
    results = benchmark.pedantic(
        _run, args=(standalone_trace, landscape.study_area.anchor),
        rounds=1, iterations=1,
    )

    table = TextTable(
        ["budget", "zones", "median err (%)", "p90 err (%)"],
        formats=["", "", ".2f", ".2f"],
    )
    medians = {}
    for budget, errs in results.items():
        medians[budget] = float(np.median(errs))
        table.add_row(
            budget, errs.size, medians[budget] * 100.0,
            float(np.quantile(errs, 0.9)) * 100.0,
        )
    print("\nAblation — WiScape estimation error vs per-epoch sample budget")
    print(table.render())

    # The knee: tiny budgets are clearly worse; beyond ~100 samples the
    # returns are marginal (the paper's choice sits on the plateau).
    assert medians[5] > 1.5 * medians[100]
    assert medians[200] > 0.7 * medians[100]  # plateau: <30% further gain
    # Error decreases (weakly) monotonically with budget.
    ordered = [medians[b] for b in SAMPLE_BUDGETS]
    assert all(a >= b * 0.8 for a, b in zip(ordered, ordered[1:]))
