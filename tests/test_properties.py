"""Cross-module property-based tests on framework invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clients.protocol import MeasurementType
from repro.core.records import ZoneRecord
from repro.core.scheduler import MeasurementScheduler
from repro.radio.technology import NetworkId
from repro.stats.distributions import EmpiricalCDF

KEY = ((0, 0), NetworkId.NET_B, MeasurementType.UDP_TRAIN)

finite_floats = st.floats(
    min_value=1.0, max_value=1e7, allow_nan=False, allow_infinity=False
)


class TestZoneRecordConservation:
    @given(
        st.lists(
            st.tuples(st.lists(finite_floats, min_size=1, max_size=20),
                      st.floats(min_value=0.0, max_value=10_000.0)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_no_samples_lost_across_epochs(self, batches):
        """Every added (finite) sample lands in exactly one epoch."""
        record = ZoneRecord(key=KEY, epoch_s=600.0, sample_budget=10)
        total_added = 0
        for values, at in sorted(batches, key=lambda b: b[1]):
            record.maybe_close_epoch(at)
            record.add_samples(values, at_s=at)
            total_added += len(values)
        record.maybe_close_epoch(1e9)
        in_history = sum(e.n_samples for e in record.history)
        assert in_history == total_added

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    @settings(max_examples=50)
    def test_epoch_percentiles_bound_mean(self, values):
        record = ZoneRecord(key=KEY, epoch_s=10.0, sample_budget=10)
        record.add_samples(values, at_s=1.0)
        est = record.maybe_close_epoch(10.0)
        assert est.p5 <= est.mean + 1e-9 or est.p5 <= max(values)
        assert min(values) <= est.p5 <= est.p95 <= max(values)


class TestSchedulerInvariants:
    @given(
        st.integers(min_value=1, max_value=500),   # budget
        st.integers(min_value=0, max_value=400),   # samples already in
        st.integers(min_value=0, max_value=50),    # active clients
        st.floats(min_value=0.0, max_value=1800.0),  # time into epoch
    )
    @settings(max_examples=100)
    def test_probability_in_unit_interval(self, budget, got, clients, into):
        scheduler = MeasurementScheduler(
            tick_interval_s=60.0,
            samples_per_task={MeasurementType.UDP_TRAIN: 50},
            rng=np.random.default_rng(0),
        )
        record = ZoneRecord(key=KEY, epoch_s=1800.0, sample_budget=budget)
        if got:
            record.add_samples([1.0] * got, at_s=0.0)
        p = scheduler.task_probability(
            record, MeasurementType.UDP_TRAIN, clients, into
        )
        assert 0.0 <= p <= 1.0
        if clients == 0 or got >= budget:
            assert p == 0.0

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=30)
    def test_more_clients_never_raises_per_client_load(self, clients):
        scheduler = MeasurementScheduler(
            tick_interval_s=60.0,
            samples_per_task={MeasurementType.UDP_TRAIN: 50},
            rng=np.random.default_rng(0),
        )
        record = ZoneRecord(key=KEY, epoch_s=1800.0, sample_budget=100)
        p1 = scheduler.task_probability(record, MeasurementType.UDP_TRAIN, 1, 0.0)
        pn = scheduler.task_probability(record, MeasurementType.UDP_TRAIN, clients, 0.0)
        assert pn <= p1 + 1e-12


class TestCdfInverse:
    @given(st.lists(finite_floats, min_size=2, max_size=200))
    @settings(max_examples=50)
    def test_cdf_of_quantile_consistent(self, samples):
        cdf = EmpiricalCDF(samples)
        for q in (0.1, 0.5, 0.9):
            # Evaluate just above the quantile: interpolation arithmetic
            # can round the quantile a half-ulp below a stored sample.
            x = math.nextafter(cdf.quantile(q), math.inf)
            # At least q of the mass lies at or below the q-quantile
            # (up to one sample of slack for the interpolation).
            assert cdf.cdf(x) >= q - 1.0 / cdf.n - 1e-9


class TestGoodputBounds:
    @given(
        st.integers(min_value=1, max_value=120),
        st.floats(min_value=1e5, max_value=3.0e6),
    )
    @settings(max_examples=30, deadline=None)
    def test_throughput_never_exceeds_send_plus_jitter(self, n, rate):
        """A paced train can never measure more than the send rate."""
        from repro.network.channel import MeasurementChannel
        from repro.radio.network import build_landscape

        land = TestGoodputBounds._land()
        channel = MeasurementChannel(land, NetworkId.NET_B, np.random.default_rng(1))
        point = land.study_area.anchor
        ipd = 1200 * 8.0 / rate
        result = channel.udp_train(
            point, 100.0, n_packets=n, inter_packet_delay_s=ipd
        )
        link = channel.link_at(point, 100.0)
        ceiling = max(rate, link.downlink_bps) * 1.6
        assert result.throughput_bps <= ceiling

    _cached_land = None

    @classmethod
    def _land(cls):
        if cls._cached_land is None:
            from repro.radio.network import build_landscape

            cls._cached_land = build_landscape(
                seed=3, include_road=False, include_nj=False
            )
        return cls._cached_land
