"""Simulation substrate: virtual time, discrete events, seeded randomness.

Everything in the reproduction that "happens over time" — client
movement, measurement tasks, coordinator epochs — runs against the
discrete-event engine here, so a full year of measurement activity can be
simulated in seconds and every run is reproducible from a single seed.
"""

from repro.sim.clock import SimClock, SimTime, format_sim_time
from repro.sim.engine import Event, EventEngine, StopSimulation
from repro.sim.rng import RngStreams, derive_seed

__all__ = [
    "SimClock",
    "SimTime",
    "format_sim_time",
    "Event",
    "EventEngine",
    "StopSimulation",
    "RngStreams",
    "derive_seed",
]
