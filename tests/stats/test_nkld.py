"""Tests for the symmetric normalized KL divergence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.nkld import (
    empirical_pmf,
    entropy,
    kl_divergence,
    nkld,
    nkld_convergence_curve,
    nkld_from_samples,
    samples_until_similar,
)

pmfs = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=12
).map(lambda xs: np.asarray(xs) / np.sum(xs))


class TestEmpiricalPmf:
    def test_sums_to_one(self):
        p = empirical_pmf([1.0, 2.0, 3.0, 4.0], n_bins=4)
        assert p.sum() == pytest.approx(1.0)

    def test_strictly_positive(self):
        p = empirical_pmf([1.0] * 100, n_bins=8, value_range=(0.0, 10.0))
        assert (p > 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_pmf([], n_bins=4)

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            empirical_pmf([1.0], n_bins=1)


class TestDivergence:
    @given(pmfs)
    @settings(max_examples=50)
    def test_zero_on_identical(self, p):
        assert nkld(p, p) == pytest.approx(0.0, abs=1e-12)

    @given(pmfs)
    @settings(max_examples=50)
    def test_symmetric(self, p):
        q = np.roll(p, 1)
        assert nkld(p, q) == pytest.approx(nkld(q, p), rel=1e-9)

    @given(pmfs)
    @settings(max_examples=50)
    def test_nonnegative(self, p):
        q = np.roll(p, 1)
        assert nkld(p, q) >= 0.0

    def test_kl_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([0.5, 0.5]), np.array([0.3, 0.3, 0.4]))

    def test_kl_rejects_zeros(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([1.0, 0.0]), np.array([0.5, 0.5]))

    def test_entropy_uniform_max(self):
        uniform = np.full(8, 1.0 / 8.0)
        peaked = np.array([0.93] + [0.01] * 7)
        assert entropy(uniform) > entropy(peaked)


class TestFromSamples:
    def test_same_distribution_small(self, rng):
        a = rng.normal(10.0, 1.0, size=4000)
        b = rng.normal(10.0, 1.0, size=4000)
        assert nkld_from_samples(a, b) < 0.05

    def test_different_distributions_large(self, rng):
        a = rng.normal(10.0, 1.0, size=4000)
        b = rng.normal(14.0, 1.0, size=4000)
        assert nkld_from_samples(a, b) > 0.5

    def test_more_samples_converge(self, rng):
        ref = rng.normal(5.0, 1.0, size=20_000)
        small = np.mean(
            [nkld_from_samples(rng.choice(ref, 20), ref) for _ in range(20)]
        )
        large = np.mean(
            [nkld_from_samples(rng.choice(ref, 400), ref) for _ in range(20)]
        )
        assert large < small


class TestConvergenceCurve:
    def test_curve_and_threshold(self, rng):
        ref = rng.normal(5.0, 1.0, size=10_000)
        draws = [rng.choice(ref, 500) for _ in range(30)]
        curve = nkld_convergence_curve(ref, draws, [10, 50, 200, 450])
        assert [n for n, _ in curve] == [10, 50, 200, 450]
        values = [v for _, v in curve]
        assert values[-1] < values[0]
        crossing = samples_until_similar(curve, threshold=values[1])
        assert crossing is not None and crossing >= 10

    def test_no_crossing_returns_none(self):
        assert samples_until_similar([(10, 0.5), (20, 0.4)], threshold=0.1) is None
