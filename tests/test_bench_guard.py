"""Tests for the perf-regression guard (benchmarks/check_regression.py)."""

import json

from benchmarks.check_regression import check, load_history, main


def _entry(link=30.0, udp=15.0, serve=None):
    entry = {
        "link_state": {"speedup_batch_vs_scalar": link},
        "udp_train": {"speedup_batch_vs_reference": udp},
    }
    if serve is not None:
        entry["serve"] = {"reports_per_s": serve}
    return entry


class TestCheck:
    def test_no_history_passes(self):
        warnings, failures = check(_entry(), [])
        assert warnings == []
        assert failures == []

    def test_steady_speedups_pass(self):
        history = [_entry(30.0, 15.0) for _ in range(5)]
        warnings, failures = check(_entry(29.0, 15.5), history)
        assert warnings == []
        assert failures == []

    def test_moderate_drop_warns(self):
        history = [_entry(30.0, 15.0) for _ in range(5)]
        warnings, failures = check(_entry(24.0, 15.0), history)  # -20%
        assert len(warnings) == 1
        assert "link_state" in warnings[0]
        assert failures == []

    def test_large_drop_fails(self):
        history = [_entry(30.0, 15.0) for _ in range(5)]
        warnings, failures = check(_entry(30.0, 9.0), history)  # -40%
        assert warnings == []
        assert len(failures) == 1
        assert "udp_train" in failures[0]

    def test_fresh_run_excluded_from_its_own_baseline(self):
        """run_perf.py appends the fresh result to history before the
        guard runs; comparing against yourself would hide regressions."""
        history = [_entry(30.0, 15.0) for _ in range(5)] + [_entry(18.0, 15.0)]
        warnings, failures = check(_entry(18.0, 15.0), history)  # -40% real
        assert len(failures) == 1

    def test_baseline_is_median_of_recent_tail(self):
        # One ancient great run must not dominate five recent ones.
        history = [_entry(100.0, 15.0)] + [_entry(20.0, 15.0)] * 5
        warnings, failures = check(_entry(19.0, 15.0), history)
        assert warnings == []
        assert failures == []

    def test_malformed_fresh_result_fails(self):
        warnings, failures = check({"link_state": {}}, [])
        assert failures

    def test_newly_tracked_metric_seeds_its_own_baseline(self):
        """History predating the serve bench still guards the metrics it
        has; the new metric passes until history accumulates it."""
        history = [_entry(30.0, 15.0) for _ in range(5)]  # no serve key
        warnings, failures = check(
            _entry(30.0, 9.0, serve=5000.0), history  # udp -40% is real
        )
        assert len(failures) == 1
        assert "udp_train" in failures[0]

    def test_serve_throughput_wallclock_band_warns_then_fails(self):
        """Absolute loopback throughput is weather-sensitive: a halving
        is inside the warn band, only past it does the guard fail."""
        history = [_entry(serve=5000.0) for _ in range(5)]
        warnings, failures = check(_entry(serve=2500.0), history)  # -50%
        assert len(warnings) == 1
        assert "serve.reports_per_s" in warnings[0]
        assert failures == []
        warnings, failures = check(_entry(serve=2000.0), history)  # -60%
        assert len(failures) == 1
        assert "serve.reports_per_s" in failures[0]

    def test_serve_latency_guard_is_direction_aware(self):
        """ack_p95_ms regresses by *rising*; a doubling is the wallclock
        fail bound, and a big improvement (drop) never trips it."""
        def entry(p95):
            e = _entry()
            e["serve"] = {"ack_p95_ms": p95}
            return e

        history = [entry(10.0) for _ in range(5)]
        warnings, failures = check(entry(14.0), history)  # +40% rise
        assert len(warnings) == 1 and failures == []
        warnings, failures = check(entry(25.0), history)  # +150% rise
        assert len(failures) == 1
        assert "serve.ack_p95_ms" in failures[0]
        warnings, failures = check(entry(4.0), history)  # big win
        assert warnings == [] and failures == []

    def test_serve_speedup_ratio_guard_is_tight(self):
        """The batched-vs-unbatched ratio self-normalizes box load, so
        it keeps the tight 30% fail threshold."""
        def entry(speedup):
            e = _entry()
            e["serve"] = {"speedup_batched_vs_unbatched": speedup}
            return e

        history = [entry(4.0) for _ in range(5)]
        warnings, failures = check(entry(2.5), history)  # -38%
        assert len(failures) == 1
        assert "speedup_batched_vs_unbatched" in failures[0]

    def test_mixed_era_history_baselines_per_key(self):
        history = ([_entry(30.0, 15.0)] * 3
                   + [_entry(30.0, 15.0, serve=5000.0)] * 2)
        warnings, failures = check(
            _entry(30.0, 15.0, serve=4900.0), history
        )
        assert warnings == []
        assert failures == []


class TestHistoryLoading:
    def test_tolerates_truncated_and_junk_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(_entry()) + "\n"
            + "not json\n"
            + json.dumps({"unrelated": True}) + "\n"
            + json.dumps(_entry(25.0, 12.0))[:-5] + "\n"
        )
        entries = load_history(str(path))
        assert len(entries) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []


class TestMain:
    def _write(self, tmp_path, fresh, history):
        perf = tmp_path / "BENCH_perf.json"
        perf.write_text(json.dumps(fresh))
        hist = tmp_path / "BENCH_history.jsonl"
        hist.write_text("".join(json.dumps(e) + "\n" for e in history))
        return str(perf), str(hist)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        perf, hist = self._write(tmp_path, _entry(), [_entry()] * 3)
        assert main(["--perf", perf, "--history", hist]) == 0
        assert "perf guard OK" in capsys.readouterr().out

    def test_warning_annotation_format(self, tmp_path, capsys):
        perf, hist = self._write(tmp_path, _entry(24.0, 15.0),
                                 [_entry(30.0, 15.0)] * 3)
        assert main(["--perf", perf, "--history", hist]) == 0
        assert "::warning title=perf regression::" in capsys.readouterr().out

    def test_exit_one_on_failure(self, tmp_path, capsys):
        perf, hist = self._write(tmp_path, _entry(10.0, 15.0),
                                 [_entry(30.0, 15.0)] * 3)
        assert main(["--perf", perf, "--history", hist]) == 1
        assert "FAIL:" in capsys.readouterr().out

    def test_unreadable_perf_exits_one(self, tmp_path):
        assert main(["--perf", str(tmp_path / "nope.json"),
                     "--history", str(tmp_path / "nope.jsonl")]) == 1
