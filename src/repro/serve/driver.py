"""Client-side driver: run a :class:`ClientAgent` against the service.

This is the measurement half of the paper's deployment picture made
real: the agent still owns the device model, mobility, and radio
channels, but instead of the coordinator calling ``agent.execute()``
in-process, the driver speaks the :mod:`repro.serve.wire` protocol —
HELLO in, POLL with the client's position, execute whatever TASK comes
back, push the REPORT, and retry on RETRY until the server ACKs.

The driver is strictly half-duplex by construction (one outstanding
request per session), so the next frame after a REPORT is always its
ACK or RETRY and the next frame after a POLL is always a TASK or PONG —
no client-side demultiplexing is needed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.clients.agent import ClientAgent
from repro.serve.wire import (
    PROTOCOL_VERSION,
    MAX_FRAME_BYTES,
    ProtocolError,
    WireError,
    encode_frame,
    read_frame,
    report_to_wire,
    task_from_wire,
)

__all__ = ["DriverStats", "ServedClient", "ServeSession"]


@dataclass
class DriverStats:
    """What one driven session did, for tests and the CLI to report."""

    polls: int = 0
    tasks_received: int = 0
    tasks_refused: int = 0
    reports_sent: int = 0
    reports_acked: int = 0
    reports_rejected: int = 0
    retries: int = 0
    #: Client-observed REPORT->ACK round-trip times (seconds).
    ack_latencies_s: List[float] = field(default_factory=list)


class ServeSession:
    """One open protocol session (shared by driver and loadgen).

    Owns the socket and the request/response discipline; knows nothing
    about how reports are produced.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str,
        networks: List[str],
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.networks = networks
        self.max_frame_bytes = max_frame_bytes
        self.welcome: Optional[Dict[str, Any]] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServeSession":
        await self.open()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def open(self) -> Dict[str, Any]:
        """Connect and run the HELLO/WELCOME handshake."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        reply = await self.request({
            "type": "HELLO",
            "v": PROTOCOL_VERSION,
            "client_id": self.client_id,
            "networks": self.networks,
        })
        if reply.get("type") == "ERROR":
            raise WireError(
                f"server refused session: {reply.get('code')}: "
                f"{reply.get('detail')}"
            )
        if reply.get("type") != "WELCOME":
            raise ProtocolError(f"expected WELCOME, got {reply.get('type')!r}")
        self.welcome = reply
        return reply

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and read the reply frame."""
        assert self._writer is not None, "session is not open"
        self._writer.write(encode_frame(message, self.max_frame_bytes))
        await self._writer.drain()
        reply = await read_frame(self._reader, self.max_frame_bytes)
        if reply is None:
            raise WireError("server closed the connection")
        return reply

    async def send_report(
        self,
        report_wire: Dict[str, Any],
        max_retries: int = 64,
    ) -> Dict[str, Any]:
        """Push one report, retrying on RETRY until it is ACKed.

        Returns the ACK frame.  Raises :class:`WireError` when the
        server errors the session or the retry budget runs out — a
        report is never silently dropped.
        """
        frame = {"type": "REPORT", "report": report_wire}
        retries = 0
        while True:
            reply = await self.request(frame)
            kind = reply.get("type")
            if kind == "ACK":
                reply["_retries"] = retries
                return reply
            if kind == "RETRY":
                if retries >= max_retries:
                    raise WireError(
                        f"report not accepted after {retries} retries"
                    )
                retries += 1
                await asyncio.sleep(float(reply.get("retry_after_s", 0.05)))
                continue
            if kind == "ERROR":
                raise WireError(
                    f"server error: {reply.get('code')}: "
                    f"{reply.get('detail')}"
                )
            raise ProtocolError(f"expected ACK/RETRY, got {kind!r}")

    async def stats(self) -> Dict[str, Any]:
        """Fetch the server's STATS_REPLY."""
        reply = await self.request({"type": "STATS"})
        if reply.get("type") != "STATS_REPLY":
            raise ProtocolError(
                f"expected STATS_REPLY, got {reply.get('type')!r}"
            )
        return reply

    async def close(self) -> None:
        """Orderly BYE (best effort) and socket teardown."""
        if self._writer is None:
            return
        try:
            self._writer.write(encode_frame({"type": "BYE"},
                                            self.max_frame_bytes))
            await self._writer.drain()
            await read_frame(self._reader, self.max_frame_bytes)
        except (WireError, ConnectionError, RuntimeError):
            pass
        finally:
            try:
                self._writer.close()
            except Exception:
                pass
            self._writer = None
            self._reader = None


class ServedClient:
    """Drive one existing :class:`ClientAgent` over the wire."""

    def __init__(
        self,
        agent: ClientAgent,
        host: str,
        port: int,
        poll_interval_s: float = 60.0,
    ):
        self.agent = agent
        self.poll_interval_s = poll_interval_s
        self.session = ServeSession(
            host,
            port,
            client_id=agent.client_id,
            networks=[n.value for n in sorted(
                agent.device.networks, key=lambda n: n.value
            )],
        )
        self.stats = DriverStats()

    async def run(self, n_polls: int, start_s: float = 0.0) -> DriverStats:
        """Poll/execute/report for ``n_polls`` sim ticks, then BYE."""
        loop_time = asyncio.get_event_loop().time
        async with self.session:
            for i in range(n_polls):
                t = start_s + i * self.poll_interval_s
                await self._poll_once(t, loop_time)
        return self.stats

    async def _poll_once(self, t: float, loop_time) -> None:
        point = self.agent.position(t)
        self.stats.polls += 1
        reply = await self.session.request({
            "type": "POLL",
            "t": t,
            "lat": point.lat,
            "lon": point.lon,
            "seq": self.stats.polls,
        })
        kind = reply.get("type")
        if kind == "PONG":
            return
        if kind == "ERROR":
            raise WireError(
                f"server error: {reply.get('code')}: {reply.get('detail')}"
            )
        if kind != "TASK":
            raise ProtocolError(f"expected TASK/PONG, got {kind!r}")
        self.stats.tasks_received += 1
        task = task_from_wire(reply["task"])
        report = self.agent.execute(task, t)
        if report is None:
            self.stats.tasks_refused += 1
            return
        self.stats.reports_sent += 1
        sent_at = loop_time()
        ack = await self.session.send_report(report_to_wire(report))
        self.stats.ack_latencies_s.append(loop_time() - sent_at)
        self.stats.retries += int(ack.get("_retries", 0))
        if ack.get("accepted"):
            self.stats.reports_acked += 1
        else:
            self.stats.reports_rejected += 1
