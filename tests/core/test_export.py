"""Tests for exporting/importing published estimates."""

import json

import pytest

from repro.clients.protocol import MeasurementReport, MeasurementType
from repro.core.controller import MeasurementCoordinator
from repro.core.export import (
    export_published,
    load_document,
    load_performance_map,
    save_published,
)
from repro.geo.zones import ZoneGrid
from repro.radio.technology import NetworkId


def _coordinator_with_estimates(landscape):
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
    coordinator = MeasurementCoordinator(grid, seed=1)
    p = landscape.study_area.anchor
    for net, rate in [(NetworkId.NET_B, 9e5), (NetworkId.NET_C, 1.3e6)]:
        for k in range(10):
            coordinator.ingest(MeasurementReport(
                task_id=k, client_id="x", network=net,
                kind=MeasurementType.UDP_TRAIN,
                start_s=10.0 + k, end_s=11.0 + k, point=p, speed_ms=0.0,
                value=rate * (1 + 0.01 * k),
                samples=[rate] * 5,
            ))
    for record in coordinator.store.records():
        coordinator._close_and_alert(record, coordinator.config.default_epoch_s)
    return coordinator, grid


class TestExport:
    def test_document_structure(self, landscape):
        coordinator, grid = _coordinator_with_estimates(landscape)
        doc = export_published(coordinator)
        assert doc["schema"] == 1
        assert doc["zone_radius_m"] == 250.0
        assert len(doc["entries"]) == 2
        entry = doc["entries"][0]
        assert set(entry) >= {"zone", "network", "kind", "mean", "p5", "p95"}

    def test_save_and_load(self, landscape, tmp_path):
        coordinator, grid = _coordinator_with_estimates(landscape)
        path = tmp_path / "published.json"
        count = save_published(coordinator, path)
        assert count == 2
        doc = load_document(path)
        assert len(doc["entries"]) == 2

    def test_schema_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_document(path)

    def test_performance_map_roundtrip(self, landscape, tmp_path):
        coordinator, grid = _coordinator_with_estimates(landscape)
        path = tmp_path / "published.json"
        save_published(coordinator, path)
        pmap = load_performance_map(path)
        zone = grid.zone_id_for(landscape.study_area.anchor)
        assert pmap.best_network(
            zone, [NetworkId.NET_B, NetworkId.NET_C]
        ) is NetworkId.NET_C

    def test_ping_entries_skipped_in_map(self, landscape, tmp_path):
        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        coordinator = MeasurementCoordinator(grid, seed=1)
        p = landscape.study_area.anchor
        for k in range(5):
            coordinator.ingest(MeasurementReport(
                task_id=k, client_id="x", network=NetworkId.NET_B,
                kind=MeasurementType.PING,
                start_s=10.0 + k, end_s=11.0 + k, point=p, speed_ms=0.0,
                value=0.12, samples=[0.12] * 5,
            ))
        for record in coordinator.store.records():
            coordinator._close_and_alert(record, coordinator.config.default_epoch_s)
        path = tmp_path / "pings.json"
        save_published(coordinator, path)
        pmap = load_performance_map(path)
        assert pmap.zones() == []


class TestLiveDominance:
    def test_dominant_network_query(self, landscape):
        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        coordinator = MeasurementCoordinator(grid, seed=1)
        p = landscape.study_area.anchor
        zone = grid.zone_id_for(p)
        # NET_C clearly dominates: its worst samples beat NET_B's best.
        for net, base in [(NetworkId.NET_B, 8e5), (NetworkId.NET_C, 1.6e6)]:
            for k in range(30):
                coordinator.ingest(MeasurementReport(
                    task_id=k, client_id="x", network=net,
                    kind=MeasurementType.UDP_TRAIN,
                    start_s=10.0 + k, end_s=11.0 + k, point=p, speed_ms=0.0,
                    value=base * (1 + 0.02 * (k % 5)),
                ))
        for record in coordinator.store.records():
            coordinator._close_and_alert(record, coordinator.config.default_epoch_s)
        winner = coordinator.dominant_network(
            zone, MeasurementType.UDP_TRAIN,
            [NetworkId.NET_B, NetworkId.NET_C],
        )
        assert winner is NetworkId.NET_C

    def test_no_dominance_when_overlapping(self, landscape):
        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        coordinator = MeasurementCoordinator(grid, seed=1)
        p = landscape.study_area.anchor
        zone = grid.zone_id_for(p)
        for net in (NetworkId.NET_B, NetworkId.NET_C):
            for k in range(30):
                coordinator.ingest(MeasurementReport(
                    task_id=k, client_id="x", network=net,
                    kind=MeasurementType.UDP_TRAIN,
                    start_s=10.0 + k, end_s=11.0 + k, point=p, speed_ms=0.0,
                    value=1e6 * (1 + 0.3 * ((k % 7) - 3) / 3),
                ))
        for record in coordinator.store.records():
            coordinator._close_and_alert(record, coordinator.config.default_epoch_s)
        assert coordinator.dominant_network(
            zone, MeasurementType.UDP_TRAIN,
            [NetworkId.NET_B, NetworkId.NET_C],
        ) is None

    def test_insufficient_data_returns_none(self, landscape):
        grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
        coordinator = MeasurementCoordinator(grid, seed=1)
        assert coordinator.dominant_network(
            (0, 0), MeasurementType.UDP_TRAIN,
            [NetworkId.NET_B, NetworkId.NET_C],
        ) is None
