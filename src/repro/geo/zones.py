"""Zone lattice and binning.

WiScape aggregates measurements into *zones*: contiguous areas small
enough that user experience inside them is similar (the paper settles on
circles of 250 m radius, about 0.2 km^2).  We realize zones as the cells
of a square lattice whose pitch equals the zone diameter; each GPS fix is
binned to the nearest lattice center, which matches the paper's "each dot
corresponds to a circular area" rendering while keeping binning O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.geo.coords import GeoPoint, LocalProjection

ZoneId = Tuple[int, int]


@dataclass(frozen=True)
class Zone:
    """A single zone: a lattice cell identified by integer (col, row).

    ``center`` is the geographic center; ``radius_m`` the nominal circular
    radius used when reporting zone size (half the lattice pitch).
    """

    zone_id: ZoneId
    center: GeoPoint
    radius_m: float

    @property
    def area_km2(self) -> float:
        """Nominal circular area of the zone in square kilometers."""
        import math

        return math.pi * (self.radius_m / 1000.0) ** 2

    def contains(self, point: GeoPoint) -> bool:
        """True if ``point`` lies within the zone's nominal circle."""
        return self.center.distance_to(point) <= self.radius_m


class ZoneGrid:
    """Square lattice of zones over a local projection.

    Parameters
    ----------
    origin:
        Reference point of the local projection (any fixed point near the
        study area; zone ids are relative to it).
    radius_m:
        Nominal zone radius.  The lattice pitch is ``2 * radius_m`` so
        that nominal circles tile the area with the same density the
        paper's circular zones do.
    """

    def __init__(self, origin: GeoPoint, radius_m: float = 250.0):
        if radius_m <= 0:
            raise ValueError("radius_m must be positive")
        self.origin = origin
        self.radius_m = float(radius_m)
        self.pitch_m = 2.0 * self.radius_m
        self._proj = LocalProjection(origin)
        self._zones: Dict[ZoneId, Zone] = {}

    @property
    def projection(self) -> LocalProjection:
        return self._proj

    def zone_id_for(self, point: GeoPoint) -> ZoneId:
        """Return the lattice cell id containing ``point``."""
        x, y = self._proj.to_xy(point)
        return (int(round(x / self.pitch_m)), int(round(y / self.pitch_m)))

    def zone_for(self, point: GeoPoint) -> Zone:
        """Return (creating if needed) the zone containing ``point``."""
        return self.zone(self.zone_id_for(point))

    def zone(self, zone_id: ZoneId) -> Zone:
        """Return (creating if needed) the zone with lattice id ``zone_id``."""
        zone = self._zones.get(zone_id)
        if zone is None:
            col, row = zone_id
            center = self._proj.to_geo(col * self.pitch_m, row * self.pitch_m)
            zone = Zone(zone_id=zone_id, center=center, radius_m=self.radius_m)
            self._zones[zone_id] = zone
        return zone

    def known_zones(self) -> List[Zone]:
        """All zones that have been materialized so far."""
        return list(self._zones.values())

    def neighbors(self, zone_id: ZoneId, ring: int = 1) -> List[Zone]:
        """Zones within ``ring`` lattice steps of ``zone_id`` (excluding it)."""
        col, row = zone_id
        out: List[Zone] = []
        for dc in range(-ring, ring + 1):
            for dr in range(-ring, ring + 1):
                if dc == 0 and dr == 0:
                    continue
                out.append(self.zone((col + dc, row + dr)))
        return out

    def bin_points(
        self, points: Iterable[GeoPoint]
    ) -> Dict[ZoneId, List[GeoPoint]]:
        """Group points by containing zone id."""
        out: Dict[ZoneId, List[GeoPoint]] = {}
        for p in points:
            out.setdefault(self.zone_id_for(p), []).append(p)
        return out

    def __iter__(self) -> Iterator[Zone]:
        return iter(self._zones.values())

    def __len__(self) -> int:
        return len(self._zones)


@dataclass
class ZoneSampleIndex:
    """Index of per-zone sample values for quick aggregate queries.

    A lightweight container used by analysis code: maps zone id to a list
    of scalar samples (e.g. throughputs) and exposes the aggregates the
    paper reports (mean, standard deviation, relative standard deviation).
    """

    samples: Dict[ZoneId, List[float]] = field(default_factory=dict)

    def add(self, zone_id: ZoneId, value: float) -> None:
        self.samples.setdefault(zone_id, []).append(value)

    def zones_with_at_least(self, n: int) -> List[ZoneId]:
        """Zone ids having at least ``n`` samples (paper uses n=200)."""
        return [z for z, vals in self.samples.items() if len(vals) >= n]

    def mean(self, zone_id: ZoneId) -> float:
        vals = self.samples[zone_id]
        return sum(vals) / len(vals)

    def std(self, zone_id: ZoneId) -> float:
        vals = self.samples[zone_id]
        mu = self.mean(zone_id)
        return (sum((v - mu) ** 2 for v in vals) / len(vals)) ** 0.5

    def relative_std(self, zone_id: ZoneId) -> float:
        """Relative standard deviation (std / mean), the paper's Fig 4 metric."""
        mu = self.mean(zone_id)
        if mu == 0:
            return 0.0
        return self.std(zone_id) / mu

    def count(self, zone_id: ZoneId) -> int:
        return len(self.samples.get(zone_id, []))
