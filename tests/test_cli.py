"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("world-info", "catalog", "generate", "map", "monitor"):
            args = parser.parse_args(
                [cmd] + (["standalone"] if cmd == "generate" else [])
            )
            assert callable(args.func)


class TestCommands:
    def test_world_info(self, capsys):
        assert main(["world-info", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "NetA" in out and "NetB" in out and "NetC" in out
        assert "km^2" in out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "standalone" in out and "wirover" in out

    def test_generate_unknown_dataset(self, capsys):
        assert main(["generate", "bogus"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_generate_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "seg.jsonl"
        code = main([
            "generate", "short-segment", "--days", "1", "--out", str(out_path)
        ])
        assert code == 0
        assert out_path.exists()
        assert out_path.stat().st_size > 1000

    def test_generate_writes_csv(self, tmp_path):
        out_path = tmp_path / "seg.csv"
        code = main([
            "generate", "short-segment", "--days", "1", "--out", str(out_path)
        ])
        assert code == 0
        header = out_path.read_text().splitlines()[0]
        assert header.startswith("dataset,")

    def test_monitor_runs(self, capsys):
        code = main(["monitor", "--buses", "2", "--hours", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "published estimates" in out

    def test_monitor_with_telemetry_then_report(self, tmp_path, capsys):
        out_dir = tmp_path / "tel"
        code = main([
            "monitor", "--buses", "2", "--hours", "0.5",
            "--telemetry", str(out_dir),
        ])
        assert code == 0
        for name in ("metrics.json", "events.jsonl", "spans.json",
                     "manifest.json"):
            assert (out_dir / name).exists(), name
        capsys.readouterr()

        assert main(["obs", "report", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "coordinator.ticks" in out
        assert "event volume" in out

    def test_obs_report_missing_dir(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope")]) == 2
        assert "no such telemetry directory" in capsys.readouterr().err
