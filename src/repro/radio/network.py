"""Per-carrier ground-truth models and the combined landscape.

:class:`CellularNetwork` answers the single question every other layer
asks: *what does carrier X's link look like at point p at time t?* — as a
:class:`LinkState` (sustained capacity, RTT, jitter, loss, availability).
:class:`Landscape` bundles the three carriers plus shared geography
(study area, roads, stadium, failure patches) into one queryable world.

Parameter values are tuned to the paper's published statistics: sustained
rates and jitter per network/region from Tables 3-4, base RTT ~113 ms
(Fig 10), near-zero loss, and NJ roughly 1.8-2.2x faster than Madison for
NetB/NetC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.geo.coords import GeoPoint, LocalProjection
from repro.geo.spatial_index import UniformGridIndex
from repro.geo.regions import (
    RoadStretch,
    StudyArea,
    madison_chicago_road,
    madison_study_area,
    new_jersey_spots,
)
from repro.radio.basestation import (
    BaseStation,
    place_along_road,
    place_base_stations,
)
from repro.obs.telemetry import get_telemetry
from repro.radio.events import LoadEvent
from repro.radio.field import SpatialField, value_noise, value_noise_batch
from repro.radio.pointcache import PointCache
from repro.radio.technology import (
    EVDO_REV_A,
    HSPA,
    NetworkId,
    RadioTechnology,
)
from repro.radio.temporal import TemporalParams, TemporalProcess
from repro.sim.rng import RngStreams, derive_seed


@dataclass(frozen=True)
class LinkState:
    """Ground-truth link characteristics for one carrier at one (p, t).

    ``downlink_bps``/``uplink_bps`` are sustainable UDP saturation rates;
    TCP achieves slightly less (the transport model accounts for that).
    ``available`` is False when the link is blacked out (persistent
    failure patches); pings sent then are lost.
    """

    network: NetworkId
    downlink_bps: float
    uplink_bps: float
    rtt_s: float
    jitter_std_s: float
    loss_rate: float
    available: bool = True


@dataclass
class LinkStateBatch:
    """Struct-of-arrays ground truth for one carrier at N (point, time) pairs.

    The array layout keeps the batch query path allocation-light and lets
    measurement primitives (UDP trains, ping series) and dataset
    generators consume whole vectors at once.  ``state(i)`` materializes
    one row as a scalar :class:`LinkState` for legacy call sites.
    """

    network: NetworkId
    downlink_bps: np.ndarray
    uplink_bps: np.ndarray
    rtt_s: np.ndarray
    jitter_std_s: np.ndarray
    loss_rate: np.ndarray
    available: np.ndarray  # bool
    binding_idx: Optional[np.ndarray] = None
    patch_idx: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.downlink_bps.shape[0])

    def state(self, i: int) -> LinkState:
        """Materialize row ``i`` as a scalar :class:`LinkState`."""
        return LinkState(
            network=self.network,
            downlink_bps=float(self.downlink_bps[i]),
            uplink_bps=float(self.uplink_bps[i]),
            rtt_s=float(self.rtt_s[i]),
            jitter_std_s=float(self.jitter_std_s[i]),
            loss_rate=float(self.loss_rate[i]),
            available=bool(self.available[i]),
        )

    def states(self) -> List[LinkState]:
        """Materialize every row (convenience for tests/small batches)."""
        return [self.state(i) for i in range(len(self))]

    def scaled(self, rate_bias: float) -> "LinkStateBatch":
        """A copy with down/uplink rates scaled by a client's rate bias."""
        return LinkStateBatch(
            network=self.network,
            downlink_bps=self.downlink_bps * rate_bias,
            uplink_bps=self.uplink_bps * rate_bias,
            rtt_s=self.rtt_s,
            jitter_std_s=self.jitter_std_s,
            loss_rate=self.loss_rate,
            available=self.available,
            binding_idx=self.binding_idx,
            patch_idx=self.patch_idx,
        )


def _as_latlon(points):
    """Normalize a points argument to ``(lat, lon)`` float arrays.

    Accepts a single :class:`GeoPoint`, a sequence of GeoPoints, a
    ``(lat_array, lon_array)`` pair, or an ``(N, 2)`` array of lat/lon
    rows.
    """
    if isinstance(points, GeoPoint):
        return (
            np.array([points.lat], dtype=float),
            np.array([points.lon], dtype=float),
        )
    if isinstance(points, (list, tuple)) and len(points) == 0:
        return np.empty(0, dtype=float), np.empty(0, dtype=float)
    if isinstance(points, tuple) and len(points) == 2 and not isinstance(points[0], float):
        lat = np.atleast_1d(np.asarray(points[0], dtype=float))
        lon = np.atleast_1d(np.asarray(points[1], dtype=float))
        if lat.shape != lon.shape:
            raise ValueError("lat and lon arrays must have the same shape")
        return lat, lon
    arr = np.asarray(points)
    if arr.dtype == object or arr.ndim == 1 and arr.size and isinstance(arr.flat[0], GeoPoint):
        lat = np.array([p.lat for p in points], dtype=float)
        lon = np.array([p.lon for p in points], dtype=float)
        return lat, lon
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 2 and arr.shape[1] == 2:
        return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])
    if arr.ndim == 1 and arr.shape == (2,):
        return np.array([arr[0]]), np.array([arr[1]])
    raise TypeError(
        "points must be a GeoPoint, a sequence of GeoPoints, a (lat, lon) "
        "array pair, or an (N, 2) lat/lon array"
    )


@dataclass(frozen=True)
class FailurePatch:
    """A small area with a persistently sick link (paper Fig 9).

    Inside the patch the link suffers repeated ping blackouts and large
    slow swings in capacity — the "zones with at least one failed ping
    per day for 20+ days" whose TCP relative standard deviation the paper
    shows is dramatically higher than healthy zones.
    """

    patch_id: int
    center: GeoPoint
    radius_m: float
    blackout_prob: float = 0.08
    blackout_bin_s: float = 120.0
    swing_amp: float = 0.45
    swing_bin_s: float = 600.0

    def contains(self, point: GeoPoint) -> bool:
        return self.center.distance_to(point) <= self.radius_m


@dataclass
class RegionBinding:
    """One region's flavor of a network: field + temporal + scales."""

    name: str
    anchor: GeoPoint
    radius_m: Optional[float]  # None marks the fallback (road corridor)
    spatial: SpatialField
    temporal: TemporalProcess
    rate_scale: float = 1.0
    jitter_scale: float = 1.0

    def matches(self, point: GeoPoint) -> bool:
        if self.radius_m is None:
            return True
        return self.anchor.distance_to(point) <= self.radius_m


@dataclass(frozen=True)
class NetworkParams:
    """Tunable knobs for one carrier."""

    network: NetworkId
    technology: RadioTechnology
    base_downlink_bps: float
    base_uplink_bps: float
    base_rtt_s: float
    base_jitter_s: float
    base_loss: float = 0.0005
    # Exponent coupling spatial quality to latency: better-covered spots
    # see proportionally lower RTT.
    rtt_spatial_exp: float = 0.8
    # Relative std of the fast per-bin RTT noise.
    rtt_fast_std: float = 0.06


class CellularNetwork:
    """One carrier's ground truth across all study regions."""

    def __init__(
        self,
        params: NetworkParams,
        bindings: Sequence[RegionBinding],
        failure_patches: Sequence[FailurePatch] = (),
        events: Sequence[LoadEvent] = (),
        seed: int = 0,
    ):
        if not bindings:
            raise ValueError("need at least one region binding")
        if not any(b.radius_m is None for b in bindings):
            # Ensure a total function over the globe: make the last
            # binding the fallback.
            bindings = list(bindings)
            last = bindings[-1]
            bindings[-1] = RegionBinding(
                name=last.name,
                anchor=last.anchor,
                radius_m=None,
                spatial=last.spatial,
                temporal=last.temporal,
                rate_scale=last.rate_scale,
                jitter_scale=last.jitter_scale,
            )
        self.params = params
        self.bindings = list(bindings)
        self.failure_patches = list(failure_patches)
        self.events = list(events)
        self.seed = int(seed)

        # Spatial acceleration: a local projection anchored at the first
        # binding, uniform-grid indexes for region bindings and failure
        # patches (replacing linear haversine scans), and a quantized-xy
        # LRU cache for the time-invariant per-point quantities.
        self._proj = LocalProjection(self.bindings[0].anchor)
        self._fallback_idx = next(
            i for i, b in enumerate(self.bindings) if b.radius_m is None
        )
        self._binding_index = UniformGridIndex(self._proj, cell_m=2500.0)
        self._indexed_bindings: List[int] = []
        for i, b in enumerate(self.bindings):
            if b.radius_m is not None:
                self._binding_index.insert(b.anchor, b.radius_m)
                self._indexed_bindings.append(i)
        self._patch_index = UniformGridIndex(self._proj, cell_m=1000.0)
        for patch in self.failure_patches:
            self._patch_index.insert(patch.center, patch.radius_m)
        self.point_cache = PointCache()

    @property
    def network_id(self) -> NetworkId:
        return self.params.network

    def add_event(self, event: LoadEvent) -> None:
        """Attach a scheduled load event (e.g. the stadium game)."""
        self.events.append(event)

    def binding_for(self, point: GeoPoint) -> RegionBinding:
        """The region binding governing ``point``."""
        return self.bindings[self._binding_idx_for(point)]

    def _binding_idx_for(self, point: GeoPoint) -> int:
        x, y = self._proj.to_xy(point)
        for idx_id in self._binding_index.candidates(x, y):
            i = self._indexed_bindings[idx_id]
            if self.bindings[i].matches(point):
                return i
        return self._fallback_idx

    def _patch_at(self, point: GeoPoint) -> Optional[FailurePatch]:
        i = self._patch_idx_at(point)
        return self.failure_patches[i] if i >= 0 else None

    def _patch_idx_at(self, point: GeoPoint) -> int:
        i = self._patch_index.query_point(point)
        return -1 if i is None else i

    def _event_factors(self, point: GeoPoint, t: float):
        lat = 1.0
        cap = 1.0
        for ev in self.events:
            lat *= ev.latency_factor(self.network_id, point, t)
            cap *= ev.capacity_factor(self.network_id, point, t)
        return lat, cap

    def link_state(self, point: GeoPoint, t: float) -> LinkState:
        """Ground-truth link state for this carrier at ``point``, ``t``.

        This is the scalar reference path: it evaluates the spatial
        fields at the exact point (no quantization).  The hot paths use
        :meth:`link_state_fast` / :meth:`link_state_batch` instead.
        """
        b = self.binding_for(point)
        spatial = b.spatial.value(point)
        smooth = b.spatial.smooth(point)
        patch = self._patch_at(point)
        return self._compose_state(b, point, t, smooth, spatial, patch)

    def _compose_state(
        self,
        b: RegionBinding,
        point: GeoPoint,
        t: float,
        smooth: float,
        spatial: float,
        patch: Optional[FailurePatch],
    ) -> LinkState:
        """Assemble a scalar LinkState from per-point quantities at ``t``."""
        temporal = b.temporal.multiplier(t)
        ev_lat, ev_cap = self._event_factors(point, t)

        capacity = (
            self.params.base_downlink_bps
            * b.rate_scale
            * spatial
            * temporal
            * ev_cap
        )
        uplink = (
            self.params.base_uplink_bps * b.rate_scale * spatial * temporal * ev_cap
        )

        load = b.temporal.load(t)
        rtt = (
            self.params.base_rtt_s
            * smooth ** (-self.params.rtt_spatial_exp)
            * (0.7 + 0.3 * load)
            * ev_lat
        )
        # Fast RTT noise, iid across 5 s bins, deterministic in (seed, t).
        rtt_bin = int(t // 5.0)
        rtt *= max(
            0.5,
            1.0
            + self.params.rtt_fast_std
            * value_noise(self.seed ^ 0x5A5A, rtt_bin, 0, 1.0),
        )

        jitter = self.params.base_jitter_s * b.jitter_scale * (0.8 + 0.4 * load)
        loss = self.params.base_loss * (1.0 + 3.0 * (ev_lat - 1.0))
        available = True

        if patch is not None:
            swing_bin = int(t // patch.swing_bin_s)
            swing = value_noise(
                self.seed + patch.patch_id * 7919, swing_bin, patch.patch_id, 1.0
            )
            capacity *= max(0.15, 1.0 + patch.swing_amp * 1.6 * swing)
            loss = min(0.05, loss + 0.01)
            blackout_bin = int(t // patch.blackout_bin_s)
            u = (
                value_noise(
                    self.seed + patch.patch_id * 104729,
                    blackout_bin,
                    1,
                    1.0,
                )
                + 1.0
            ) / 2.0
            if u < patch.blackout_prob:
                available = False

        tech = self.params.technology
        return LinkState(
            network=self.network_id,
            downlink_bps=tech.clamp_downlink(capacity),
            uplink_bps=tech.clamp_uplink(uplink),
            rtt_s=max(0.02, rtt),
            jitter_std_s=max(1e-4, jitter),
            loss_rate=min(0.10, max(0.0, loss)),
            available=available,
        )

    # -- batch query path --------------------------------------------------

    def _point_quantities(self, lat, lon):
        """Time-invariant per-point quantities, computed vectorized.

        Returns ``(binding_idx, smooth, value, patch_idx)`` arrays; the
        spatial fields are evaluated at the exact coordinates given.
        """
        lat = np.asarray(lat, dtype=float)
        lon = np.asarray(lon, dtype=float)
        xy = self._proj.to_xy_batch(lat, lon)
        raw = self._binding_index.query_batch(lat, lon, xy=xy)
        bidx = np.full(lat.shape, self._fallback_idx, dtype=np.int64)
        hit = raw >= 0
        if hit.any():
            remap = np.asarray(self._indexed_bindings, dtype=np.int64)
            bidx[hit] = remap[raw[hit]]
        if self.failure_patches:
            pidx = self._patch_index.query_batch(lat, lon, xy=xy)
        else:
            pidx = np.full(lat.shape, -1, dtype=np.int64)
        smooth = np.empty(lat.shape, dtype=float)
        value = np.empty(lat.shape, dtype=float)
        for bi in np.unique(bidx):
            m = bidx == bi
            f = self.bindings[int(bi)].spatial
            fx, fy = f.project_batch(lat[m], lon[m])
            s = f.smooth_batch(fx, fy)
            smooth[m] = s
            value[m] = s * (1.0 + f.texture_batch(fx, fy))
        return bidx, smooth, value, pidx

    def _point_quantities_cached(self, lat, lon):
        """Cached :meth:`_point_quantities` keyed by quantized location.

        Cache misses are evaluated at the quantization-cell *centers*, so
        a result depends only on the quantized location — never on query
        order or batch composition (see :mod:`repro.radio.pointcache`).
        """
        lat = np.asarray(lat, dtype=float)
        lon = np.asarray(lon, dtype=float)
        cache = self.point_cache
        x, y = self._proj.to_xy_batch(lat, lon)
        q = cache.quantum_m
        kx = np.round(x / q).astype(np.int64).tolist()
        ky = np.round(y / q).astype(np.int64).tolist()
        n = lat.size
        bidx = np.empty(n, dtype=np.int64)
        smooth = np.empty(n, dtype=float)
        value = np.empty(n, dtype=float)
        pidx = np.empty(n, dtype=np.int64)
        missing: Dict[tuple, List[int]] = {}
        for i in range(n):
            key = (kx[i], ky[i])
            tup = cache.get(key)
            if tup is None:
                missing.setdefault(key, []).append(i)
            else:
                bidx[i], smooth[i], value[i], pidx[i] = tup
        if missing:
            keys = list(missing)
            cx = np.array([k[0] for k in keys], dtype=float) * q
            cy = np.array([k[1] for k in keys], dtype=float) * q
            clat, clon = self._proj.to_geo_batch(cx, cy)
            b2, s2, v2, p2 = self._point_quantities(clat, clon)
            for j, key in enumerate(keys):
                tup = (int(b2[j]), float(s2[j]), float(v2[j]), int(p2[j]))
                cache.put(key, tup)
                for i in missing[key]:
                    bidx[i], smooth[i], value[i], pidx[i] = tup
        return bidx, smooth, value, pidx

    def warm_point_cache(self, points) -> int:
        """Precompute cache entries for ``points``; returns entry count.

        Dataset generators and the coordinator call this with a whole
        day's (or tick's) worth of positions so the expensive per-point
        field math runs once, vectorized, instead of per measurement.
        """
        lat, lon = _as_latlon(points)
        tel = get_telemetry()
        with tel.span("radio.warm_point_cache"):
            self._point_quantities_cached(lat, lon)
        if tel.enabled:
            tel.metrics.counter("radio.cache_warms").inc()
            tel.metrics.counter("radio.cache_warm_points").inc(lat.size)
        return len(self.point_cache)

    def link_state_fast(self, point: GeoPoint, t: float) -> LinkState:
        """Scalar link state via the point cache (quantized location).

        Matches :meth:`link_state` up to the cache's quantization error;
        the per-point field evaluation is served from the cache after the
        first visit to a location.
        """
        x, y = self._proj.to_xy(point)
        cache = self.point_cache
        key = cache.key_for(x, y)
        tup = cache.get(key)
        if tup is None:
            cx, cy = cache.center_xy(key)
            clat, clon = self._proj.to_geo_batch(
                np.array([cx]), np.array([cy])
            )
            b2, s2, v2, p2 = self._point_quantities(clat, clon)
            tup = (int(b2[0]), float(s2[0]), float(v2[0]), int(p2[0]))
            cache.put(key, tup)
        bi, smooth, value, pi = tup
        patch = self.failure_patches[pi] if pi >= 0 else None
        return self._compose_state(
            self.bindings[bi], point, t, smooth, value, patch
        )

    def link_state_batch(self, points, times, use_cache: bool = True) -> LinkStateBatch:
        """Vectorized ground truth over N (point, time) pairs.

        ``points`` may be a single :class:`GeoPoint` (broadcast over
        ``times``), a sequence of GeoPoints, a ``(lat, lon)`` array pair,
        or an ``(N, 2)`` array of lat/lon rows; ``times`` a scalar or
        array (broadcast against points).  With ``use_cache`` the
        time-invariant per-point quantities go through the quantized
        point cache; disable it to evaluate at exact coordinates (the
        equivalence tests compare that against :meth:`link_state`).

        Simulation times are assumed non-negative (the scalar path
        truncates time bins toward zero, the batch path floors them).
        """
        tel = get_telemetry()
        lat, lon = _as_latlon(points)
        if tel.enabled:
            tel.metrics.counter("radio.batch_queries").inc()
            tel.metrics.histogram(
                "radio.batch_size",
                (1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0),
            ).observe(lat.size)
        t = np.atleast_1d(np.asarray(times, dtype=float))
        if use_cache:
            bidx, smooth, value, pidx = self._point_quantities_cached(lat, lon)
        else:
            bidx, smooth, value, pidx = self._point_quantities(lat, lon)
        # Broadcast points against times.
        if lat.size == 1 and t.size > 1:
            n = t.size
            lat = np.full(n, lat[0])
            lon = np.full(n, lon[0])
            bidx = np.full(n, bidx[0])
            smooth = np.full(n, smooth[0])
            value = np.full(n, value[0])
            pidx = np.full(n, pidx[0])
        elif t.size == 1 and lat.size != 1:
            t = np.full(lat.size, t[0])
        elif lat.size != t.size:
            raise ValueError(
                f"points ({lat.size}) and times ({t.size}) do not broadcast"
            )
        n = t.size
        p = self.params

        temporal = np.empty(n, dtype=float)
        load = np.empty(n, dtype=float)
        rate_scale = np.empty(n, dtype=float)
        jitter_scale = np.empty(n, dtype=float)
        for bi in np.unique(bidx):
            m = bidx == bi
            b = self.bindings[int(bi)]
            temporal[m] = b.temporal.multiplier_batch(t[m])
            load[m] = b.temporal.load_batch(t[m])
            rate_scale[m] = b.rate_scale
            jitter_scale[m] = b.jitter_scale

        ev_lat = np.ones(n, dtype=float)
        ev_cap = np.ones(n, dtype=float)
        for ev in self.events:
            l_f, c_f = ev.factors_batch(self.network_id, lat, lon, t)
            ev_lat *= l_f
            ev_cap *= c_f

        capacity = p.base_downlink_bps * rate_scale * value * temporal * ev_cap
        uplink = p.base_uplink_bps * rate_scale * value * temporal * ev_cap

        rtt = (
            p.base_rtt_s
            * smooth ** (-p.rtt_spatial_exp)
            * (0.7 + 0.3 * load)
            * ev_lat
        )
        rtt_bin = np.floor(t / 5.0)
        rtt = rtt * np.maximum(
            0.5,
            1.0
            + p.rtt_fast_std
            * value_noise_batch(self.seed ^ 0x5A5A, rtt_bin, 0.0, 1.0),
        )

        jitter = p.base_jitter_s * jitter_scale * (0.8 + 0.4 * load)
        loss = p.base_loss * (1.0 + 3.0 * (ev_lat - 1.0))
        available = np.ones(n, dtype=bool)

        patched = pidx >= 0
        if patched.any():
            for pi in np.unique(pidx[patched]):
                patch = self.failure_patches[int(pi)]
                m = pidx == pi
                tm = t[m]
                swing = value_noise_batch(
                    self.seed + patch.patch_id * 7919,
                    np.floor(tm / patch.swing_bin_s),
                    float(patch.patch_id),
                    1.0,
                )
                capacity[m] *= np.maximum(
                    0.15, 1.0 + patch.swing_amp * 1.6 * swing
                )
                loss[m] = np.minimum(0.05, loss[m] + 0.01)
                u = (
                    value_noise_batch(
                        self.seed + patch.patch_id * 104729,
                        np.floor(tm / patch.blackout_bin_s),
                        1.0,
                        1.0,
                    )
                    + 1.0
                ) / 2.0
                available[m] = u >= patch.blackout_prob

        tech = p.technology
        return LinkStateBatch(
            network=self.network_id,
            downlink_bps=np.clip(capacity, 0.0, tech.max_downlink_bps),
            uplink_bps=np.clip(uplink, 0.0, tech.max_uplink_bps),
            rtt_s=np.maximum(0.02, rtt),
            jitter_std_s=np.maximum(1e-4, jitter),
            loss_rate=np.clip(loss, 0.0, 0.10),
            available=available,
            binding_idx=bidx,
            patch_idx=pidx,
        )


class Landscape:
    """The full synthetic world: three carriers plus shared geography."""

    def __init__(
        self,
        networks: Dict[NetworkId, CellularNetwork],
        study_area: StudyArea,
        road: Optional[RoadStretch] = None,
        stadium: Optional[GeoPoint] = None,
        seed: int = 0,
    ):
        self.networks = dict(networks)
        self.study_area = study_area
        self.road = road
        self.stadium = stadium
        self.seed = seed

    def network(self, net: NetworkId) -> CellularNetwork:
        return self.networks[net]

    def network_ids(self) -> List[NetworkId]:
        return sorted(self.networks.keys(), key=lambda n: n.value)

    def link_state(self, net: NetworkId, point: GeoPoint, t: float) -> LinkState:
        """Ground truth for carrier ``net`` at ``point`` and time ``t``."""
        return self.networks[net].link_state(point, t)

    def link_state_fast(self, net: NetworkId, point: GeoPoint, t: float) -> LinkState:
        """Cached-point ground truth for carrier ``net`` (hot path)."""
        return self.networks[net].link_state_fast(point, t)

    def link_state_batch(
        self, net: NetworkId, points, times, use_cache: bool = True
    ) -> LinkStateBatch:
        """Vectorized ground truth for carrier ``net`` over N pairs."""
        return self.networks[net].link_state_batch(points, times, use_cache=use_cache)

    def warm_cache(self, points, nets: Optional[Sequence[NetworkId]] = None) -> None:
        """Precompute per-point cache entries on some (default: all) carriers."""
        for net in (self.network_ids() if nets is None else nets):
            self.networks[net].warm_point_cache(points)

    def publish_cache_metrics(self, telemetry=None) -> None:
        """Export per-carrier point-cache statistics as gauges.

        Called at the end of a telemetry-enabled run (cache counters are
        cumulative, so a final snapshot captures the whole run).
        """
        tel = telemetry if telemetry is not None else get_telemetry()
        if not tel.enabled:
            return
        for net in self.network_ids():
            cache = self.networks[net].point_cache
            prefix = f"radio.pointcache.{net.value}"
            tel.metrics.gauge(f"{prefix}.hits").set(cache.hits)
            tel.metrics.gauge(f"{prefix}.misses").set(cache.misses)
            tel.metrics.gauge(f"{prefix}.entries").set(len(cache))
            tel.metrics.gauge(f"{prefix}.hit_rate").set(cache.hit_rate)

    def add_event(self, event: LoadEvent, nets: Optional[Sequence[NetworkId]] = None) -> None:
        """Attach a load event to some (default: all) carriers.

        ``nets`` distinguishes "not given" (None -> all carriers) from an
        explicitly empty sequence (attach to none) — a ``nets or ...``
        test here once silently broadcast events passed ``nets=[]``.
        """
        for net in (self.network_ids() if nets is None else nets):
            self.networks[net].add_event(event)


# ---------------------------------------------------------------------------
# World construction
# ---------------------------------------------------------------------------

#: Sustained-rate and latency presets per carrier, tuned to paper Tables 3-4.
_DEFAULT_PARAMS: Dict[NetworkId, NetworkParams] = {
    NetworkId.NET_A: NetworkParams(
        network=NetworkId.NET_A,
        technology=HSPA,
        base_downlink_bps=1.42e6,
        base_uplink_bps=0.55e6,
        base_rtt_s=0.105,
        # IPDV of consecutive paced packets reports ~1.6x the per-packet
        # delay std; bases are scaled so *measured* jitter matches the
        # paper (NetA ~7.4 ms, NetB ~3.0 ms, NetC ~3.4 ms in Madison).
        base_jitter_s=0.0124,
    ),
    NetworkId.NET_B: NetworkParams(
        network=NetworkId.NET_B,
        technology=EVDO_REV_A,
        base_downlink_bps=1.02e6,
        base_uplink_bps=0.62e6,
        base_rtt_s=0.113,
        base_jitter_s=0.0029,
    ),
    NetworkId.NET_C: NetworkParams(
        network=NetworkId.NET_C,
        technology=EVDO_REV_A,
        base_downlink_bps=1.12e6,
        base_uplink_bps=0.60e6,
        base_rtt_s=0.121,
        base_jitter_s=0.0037,
    ),
}

#: NJ sustained rates are ~1.8-2.2x Madison's for NetB/NetC (Table 3).
_NJ_RATE_SCALE = {
    NetworkId.NET_A: 1.0,
    NetworkId.NET_B: 1.90,
    NetworkId.NET_C: 2.10,
}
_NJ_JITTER_SCALE = {
    NetworkId.NET_A: 1.0,
    NetworkId.NET_B: 1.39,
    NetworkId.NET_C: 0.73,
}

#: Sustained-rate scaling on the intercity road corridor.  The HSPA
#: carrier's rural corridor coverage is thinner than in the city, which
#: levels the three carriers on the road and produces the heavily
#: crossing per-zone winners of the paper's Fig 13.
_ROAD_RATE_SCALE = {
    NetworkId.NET_A: 0.80,
    NetworkId.NET_B: 1.02,
    NetworkId.NET_C: 0.98,
}


def build_landscape(
    seed: int = 7,
    include_road: bool = True,
    include_nj: bool = True,
    city_stations_per_network: int = 10,
    failure_patch_count: int = 16,
    networks: Optional[Sequence[NetworkId]] = None,
) -> Landscape:
    """Construct the full paper-like world, deterministically from ``seed``.

    The returned landscape has the three carriers over a Madison-like
    155 km^2 study area, optionally the 240 km road corridor and the NJ
    spot regions, a stadium location for the football-game event (the
    event itself is attached by callers/benches that need it), and
    ``failure_patch_count`` sick patches for NetB (the Standalone
    dataset, from which Fig 9 is computed, is NetB-only).
    """
    streams = RngStreams(seed)
    area = madison_study_area()
    road = madison_chicago_road() if include_road else None
    nj = new_jersey_spots() if include_nj else []
    nets = list(networks) if networks else list(_DEFAULT_PARAMS.keys())

    # Calibration points shared across networks (field normalization).
    city_points = area.grid_points(spacing_m=800.0)
    road_points = road.sample_every(2000.0) if road else []

    built: Dict[NetworkId, CellularNetwork] = {}
    for net in nets:
        params = _DEFAULT_PARAMS[net]
        rng = streams.get(f"stations:{net.value}")
        bindings: List[RegionBinding] = []

        city_stations = place_base_stations(
            area.anchor, area.radius_m, city_stations_per_network, rng
        )
        city_field = SpatialField(
            stations=city_stations,
            origin=area.anchor,
            seed=derive_seed(seed, f"texture:{net.value}:city"),
        )
        city_field.calibrate(city_points)
        bindings.append(
            RegionBinding(
                name="madison",
                anchor=area.anchor,
                radius_m=area.radius_m + 2000.0,
                spatial=city_field,
                temporal=TemporalProcess(
                    TemporalParams.madison_like(),
                    derive_seed(seed, f"temporal:{net.value}:madison"),
                ),
            )
        )

        for region in nj:
            nj_stations = place_base_stations(
                region.anchor, 4000.0, 7,
                streams.get(f"njstations:{net.value}:{region.name}"),
                mean_range_m=2500.0,
            )
            nj_field = SpatialField(
                stations=nj_stations,
                origin=region.anchor,
                seed=derive_seed(seed, f"texture:{net.value}:{region.name}"),
            )
            nj_field.calibrate(
                [region.anchor.offset(dx, dy) for dx in (-2000.0, 0.0, 2000.0) for dy in (-2000.0, 0.0, 2000.0)]
            )
            bindings.append(
                RegionBinding(
                    name=region.name,
                    anchor=region.anchor,
                    radius_m=5000.0,
                    spatial=nj_field,
                    temporal=TemporalProcess(
                        TemporalParams.new_jersey_like(),
                        derive_seed(seed, f"temporal:{net.value}:{region.name}"),
                    ),
                    rate_scale=_NJ_RATE_SCALE[net],
                    jitter_scale=_NJ_JITTER_SCALE[net],
                )
            )

        if road is not None:
            road_stations = place_along_road(
                road.waypoints, 5000.0, streams.get(f"roadstations:{net.value}")
            )
            road_field = SpatialField(
                stations=road_stations,
                origin=area.anchor,
                seed=derive_seed(seed, f"texture:{net.value}:road"),
            )
            road_field.calibrate(road_points)
            bindings.append(
                RegionBinding(
                    name="road",
                    anchor=area.anchor,
                    radius_m=None,  # fallback region
                    spatial=road_field,
                    temporal=TemporalProcess(
                        TemporalParams.madison_like(),
                        derive_seed(seed, f"temporal:{net.value}:road"),
                    ),
                    rate_scale=_ROAD_RATE_SCALE[net],
                )
            )
        else:
            # Make the city binding the fallback if there is no road.
            last = bindings[0]
            bindings.append(
                RegionBinding(
                    name=last.name,
                    anchor=last.anchor,
                    radius_m=None,
                    spatial=last.spatial,
                    temporal=last.temporal,
                    rate_scale=last.rate_scale,
                    jitter_scale=last.jitter_scale,
                )
            )

        patches: List[FailurePatch] = []
        if net is NetworkId.NET_B and failure_patch_count > 0:
            prng = streams.get("failure-patches")
            from repro.geo.coords import destination_point

            for i in range(failure_patch_count):
                r = area.radius_m * float(np.sqrt(prng.uniform(0.04, 0.95)))
                theta = float(prng.uniform(0.0, 360.0))
                patches.append(
                    FailurePatch(
                        patch_id=i,
                        center=destination_point(area.anchor, theta, r),
                        radius_m=float(prng.uniform(250.0, 450.0)),
                    )
                )

        built[net] = CellularNetwork(
            params=params,
            bindings=bindings,
            failure_patches=patches,
            seed=derive_seed(seed, f"net:{net.value}"),
        )

    stadium = area.anchor.offset(-1800.0, 600.0)
    return Landscape(
        networks=built,
        study_area=area,
        road=road,
        stadium=stadium,
        seed=seed,
    )
