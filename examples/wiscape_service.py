#!/usr/bin/env python3
"""The WiScape service loop: measure, publish, distribute, consume.

The paper's deployment story: the coordinator accumulates client
measurements and "can simply make [the data] available to potential
clients, at a low overhead".  This example runs that whole loop:

1. a bus fleet measures the city for a few simulated hours;
2. the coordinator's published estimates are exported to JSON (the
   artifact a phone would download);
3. a multi-SIM client loads the JSON as a performance map and uses it
   to pick carriers — no live measurement of its own;
4. the operator checks coverage: which zones are fresh, stale, blind.

Run:  python examples/wiscape_service.py
"""

import tempfile
from pathlib import Path

from repro import (
    ClientAgent,
    Device,
    DeviceCategory,
    EventEngine,
    MeasurementCoordinator,
    MeasurementType,
    NetworkId,
    ZoneGrid,
    build_landscape,
)
from repro.analysis.tables import TextTable
from repro.apps.multisim import BestZoneSelector, FixedSelector, MultiSimClient
from repro.apps.webworkload import surge_page_pool
from repro.core.coverage import coverage_report
from repro.core.export import load_performance_map, save_published
from repro.mobility.models import RouteFollower
from repro.mobility.routes import city_bus_routes
from repro.mobility.vehicles import TransitBus

BC = [NetworkId.NET_B, NetworkId.NET_C]


def main() -> None:
    landscape = build_landscape(seed=7, include_road=False, include_nj=False)
    grid = ZoneGrid(landscape.study_area.anchor, radius_m=250.0)
    coordinator = MeasurementCoordinator(grid, seed=1)

    print("Phase 1 — measuring: 6 buses, 06:00 to 11:00...")
    routes = city_bus_routes(landscape.study_area, count=8)
    for b in range(6):
        bus = TransitBus(bus_id=b, routes=routes, seed=b)
        device = Device(f"bus-{b}", DeviceCategory.SBC_PCMCIA, BC, seed=b)
        coordinator.register_client(ClientAgent(f"bus-{b}", device, bus, landscape, seed=b))
    engine = EventEngine()
    engine.clock.reset(6 * 3600.0)
    coordinator.attach(engine, until=11 * 3600.0)
    engine.run(until=11 * 3600.0)
    print(
        f"  {coordinator.stats.reports_ingested} reports ingested, "
        f"{coordinator.stats.reports_rejected} rejected by validation"
    )

    print("Phase 2 — publishing to JSON...")
    out = Path(tempfile.mkdtemp()) / "wiscape-published.json"
    count = save_published(coordinator, out)
    print(f"  {count} published estimates -> {out} ({out.stat().st_size} bytes)")

    print("Phase 3 — a phone consumes the map (no own measurements)...")
    perf_map = load_performance_map(out)
    route = routes[0]
    phone_movement = RouteFollower(route, mean_speed_kmh=30.0, seed=99)
    phone = MultiSimClient(landscape, phone_movement, grid, BC, seed=500)
    pages = surge_page_pool(count=500, seed=9)
    start = 11.5 * 3600.0
    table = TextTable(["strategy", "total (s)"], formats=["", ".1f"])
    informed = phone.fetch(pages, BestZoneSelector(perf_map, BC), start)
    table.add_row("WiScape map", informed.total_duration_s)
    fixed_times = {}
    for net in BC:
        fixed = phone.fetch(pages, FixedSelector(net), start)
        fixed_times[net] = fixed.total_duration_s
        table.add_row(f"fixed {net.value}", fixed.total_duration_s)
    print(table.render())
    best = min(fixed_times.values())
    worst = max(fixed_times.values())
    print(
        "  WiScape tracks this route's best carrier within "
        f"{informed.total_duration_s / best - 1.0:+.1%} without knowing in "
        f"advance which carrier that is (picking wrong costs "
        f"{worst / best - 1.0:+.1%})."
    )

    print("Phase 4 — operator coverage check...")
    report = coverage_report(
        coordinator.store, now_s=engine.now, kind=MeasurementType.UDP_TRAIN
    )
    print(
        f"  streams: {len(report.entries)}; fresh {len(report.fresh)}, "
        f"stale {len(report.stale)}, never-published {len(report.blind)} "
        f"({report.fresh_fraction:.0%} fresh)"
    )


if __name__ == "__main__":
    main()
