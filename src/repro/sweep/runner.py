"""The sharded sweep execution engine.

:class:`SweepRunner` executes every cell of a
:class:`~repro.sweep.grid.SweepGrid` and leaves a self-describing
output directory::

    OUT/
      sweep_manifest.json     grid hash + worker config (provenance)
      sweep_status.json       wall-clock / schedule record (NOT deterministic)
      cells/<cell_id>/        one directory per cell:
        cell.json             identity + status + scenario metrics
        metrics.json          per-cell telemetry registry snapshot
        events.jsonl          per-cell structured event log
        spans.json            per-cell host timings (NOT deterministic)
      metrics.json            merged by the reducer (after run / `sweep merge`)
      summary.jsonl           one line per cell, cell-id order

Execution model
---------------

``workers <= 1`` runs every cell inline — no subprocesses, useful for
debugging and as the byte-identical baseline.  ``workers > 1`` spawns a
pool of worker processes fed from a **bounded** task queue (depth
``2 * workers``), so a million-cell grid never materializes in queue
memory.  Each worker owns a
:class:`~repro.sweep.scenarios.WorkerContext` whose warm caches (built
landscapes, survey traces) persist across the cells it executes.

Fault tolerance: a worker that dies mid-cell (OOM-kill, segfault,
``os._exit``) is detected by the supervisor, the in-flight cell is
requeued up to ``max_retries`` times, and a replacement worker is
spawned.  A cell that keeps killing workers is marked ``failed`` in its
``cell.json`` and the sweep carries on — one poisoned cell cannot sink
a thousand-cell grid.

Determinism: a cell's artifacts are a pure function of the cell itself
(scenario + seed + overrides; RNG is spawn-keyed off the cell id), so
``cell.json``/``metrics.json``/``events.jsonl`` — and everything the
reducer folds from them — are byte-identical for any worker count or
schedule.  Wall-clock and scheduling live only in ``sweep_status.json``
and ``spans.json``, which are excluded from determinism guarantees.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sweep.grid import (
    CELL_FILENAME,
    CELLS_DIRNAME,
    STATUS_FILENAME,
    SWEEP_MANIFEST_FILENAME,
    SweepCell,
    SweepGrid,
    SweepManifest,
)

__all__ = ["SweepRunner", "SweepResult", "run_cell", "pick_start_method"]

#: Seconds the supervisor waits on the result queue per poll.
_POLL_S = 0.05

#: Directory (under OUT/) of per-worker in-flight marker files.
_WORKERS_DIRNAME = ".workers"


def _marker_path(out_dir: str, worker_id: int) -> str:
    return os.path.join(out_dir, _WORKERS_DIRNAME, f"{worker_id}.cell")


def pick_start_method(requested: str = "auto") -> str:
    """Resolve the multiprocessing start method.

    ``auto`` prefers ``fork`` (cheap worker startup, Linux default) and
    falls back to ``spawn`` where fork is unavailable (e.g. Windows).
    """
    available = multiprocessing.get_all_start_methods()
    if requested != "auto":
        if requested not in available:
            raise ValueError(
                f"start method {requested!r} not available (options: "
                f"{', '.join(available)})"
            )
        return requested
    return "fork" if "fork" in available else "spawn"


def run_cell(cell: SweepCell, ctx, out_dir: str) -> Dict[str, Any]:
    """Execute one cell and write its artifact directory.

    Installs a fresh ambient :class:`~repro.obs.telemetry.Telemetry`
    for the duration of the scenario, then writes ``cell.json`` plus the
    telemetry artifacts under ``out_dir/cells/<cell_id>/``.  Exceptions
    are captured into a ``status: error`` cell record — they never
    propagate out of a worker.

    Returns the cell record dict (what ``cell.json`` contains).
    """
    from repro.obs import Telemetry, use_telemetry
    from repro.sweep.scenarios import get_scenario

    cell_dir = os.path.join(out_dir, CELLS_DIRNAME, cell.cell_id)
    os.makedirs(cell_dir, exist_ok=True)
    record: Dict[str, Any] = dict(cell.to_dict(), cell_id=cell.cell_id)
    ctx.cell_dir = cell_dir
    telemetry = Telemetry()
    #: The cap is run configuration (identical on every worker), so the
    #: gauge is schedule-independent and safe in deterministic artifacts;
    #: live size/evictions are NOT (they depend on which cells this
    #: worker ran) and go only to sweep_status.json.
    cache_max = getattr(ctx, "cache_max", None)
    if cache_max is not None:
        telemetry.metrics.gauge("sweep.context_cache_max").set(cache_max)
    try:
        fn = get_scenario(cell.scenario)
        with use_telemetry(telemetry):
            metrics = fn(cell, ctx)
        record["status"] = "ok"
        record["metrics"] = metrics if metrics is not None else {}
    except Exception as exc:
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["metrics"] = {}
        with open(os.path.join(cell_dir, "traceback.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(traceback.format_exc())
    finally:
        ctx.cell_dir = None
    telemetry.write_artifacts(cell_dir)
    _write_cell_record(cell_dir, record)
    return record


def _write_cell_record(cell_dir: str, record: Dict[str, Any]) -> None:
    with open(os.path.join(cell_dir, CELL_FILENAME), "w",
              encoding="utf-8") as fh:
        fh.write(json.dumps(record, indent=2, sort_keys=True) + "\n")


def _worker_main(worker_id: int, out_dir: str, task_q, result_q,
                 cache_max: Optional[int] = None) -> None:
    """Worker loop: pull cell dicts until the ``None`` sentinel arrives.

    Before running each cell the worker synchronously writes its id to a
    per-worker marker file.  Queue messages ride a feeder thread that a
    dying process (``os._exit``, segfault, OOM-kill) silently drops, so
    the marker — not the ``started`` message — is what the supervisor
    trusts when attributing a dead worker's in-flight cell.
    """
    from repro.sweep.scenarios import WorkerContext

    ctx = WorkerContext() if cache_max is None else WorkerContext(cache_max)
    marker = _marker_path(out_dir, worker_id)
    while True:
        item = task_q.get()
        if item is None:
            break
        cell = SweepCell.from_dict(item)
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write(cell.cell_id)
        result_q.put(("started", worker_id, cell.cell_id))
        t0 = time.perf_counter()
        record = run_cell(cell, ctx, out_dir)
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("")
        result_q.put((
            "done", worker_id, cell.cell_id, record["status"],
            time.perf_counter() - t0, ctx.cache_size, ctx.evictions,
        ))


@dataclass
class SweepResult:
    """Outcome of one sweep run: per-status counts plus the schedule log."""

    out_dir: str
    total: int
    ok: int = 0
    error: int = 0
    failed: int = 0
    retries: int = 0
    wall_s: float = 0.0
    statuses: Dict[str, str] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        """True when every cell completed with scenario status ``ok``."""
        return self.ok == self.total


class SweepRunner:
    """Shard a grid's cells across a (possibly single-process) worker pool."""

    def __init__(
        self,
        grid: SweepGrid,
        out_dir: str,
        workers: int = 1,
        max_retries: int = 1,
        start_method: str = "auto",
        queue_depth: Optional[int] = None,
        context_cache_max: Optional[int] = None,
        store_path: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if context_cache_max is not None and context_cache_max < 1:
            raise ValueError("context_cache_max must be >= 1")
        self.grid = grid
        self.out_dir = out_dir
        self.workers = int(workers)
        self.max_retries = int(max_retries)
        self.start_method = pick_start_method(start_method)
        self.queue_depth = queue_depth or 2 * self.workers
        #: LRU bound on each worker's WorkerContext memo (the
        #: ``sweep.context_cache_max`` knob); None takes the default.
        self.context_cache_max = context_cache_max
        #: Measurement-store target: when set, the reducer performs one
        #: merged ingest of the whole sweep after the fold (never
        #: per-cell — workers stay store-free on the hot path).
        self.store_path = store_path

    # -- public API ------------------------------------------------------

    def run(self, merge: bool = True) -> SweepResult:
        """Execute every cell; optionally fold results when done.

        Writes ``sweep_manifest.json`` up front (a killed run is still
        identifiable), ``sweep_status.json`` at the end, and — when
        ``merge`` — the reduced ``metrics.json``/``summary.jsonl``.
        """
        cells = self.grid.cells()
        os.makedirs(os.path.join(self.out_dir, CELLS_DIRNAME), exist_ok=True)
        os.makedirs(os.path.join(self.out_dir, _WORKERS_DIRNAME),
                    exist_ok=True)
        manifest = SweepManifest(
            self.grid, workers=self.workers, start_method=self.start_method,
            max_retries=self.max_retries,
        )
        manifest.write(os.path.join(self.out_dir, SWEEP_MANIFEST_FILENAME))

        t0 = time.perf_counter()
        if self.workers == 1:
            result = self._run_serial(cells)
        else:
            result = self._run_pool(cells)
        result.wall_s = time.perf_counter() - t0
        self._write_status(result)
        if merge:
            from repro.sweep.reduce import merge_cells

            merged = merge_cells(self.out_dir, store_path=self.store_path)
            if merged.store_rows is not None:
                self._record_store_status(merged)
        return result

    # -- serial path -----------------------------------------------------

    def _run_serial(self, cells: List[SweepCell]) -> SweepResult:
        from repro.sweep.scenarios import WorkerContext

        result = SweepResult(out_dir=self.out_dir, total=len(cells))
        ctx = (WorkerContext() if self.context_cache_max is None
               else WorkerContext(self.context_cache_max))
        self._durations: Dict[str, float] = {}
        self._cache_stats: Dict[int, Dict[str, int]] = {}
        for cell in cells:
            t0 = time.perf_counter()
            record = run_cell(cell, ctx, self.out_dir)
            self._durations[cell.cell_id] = time.perf_counter() - t0
            self._account(result, cell.cell_id, record["status"])
        self._cache_stats[0] = {
            "size": ctx.cache_size, "evictions": ctx.evictions,
        }
        return result

    # -- pool path -------------------------------------------------------

    def _run_pool(self, cells: List[SweepCell]) -> SweepResult:
        ctx = multiprocessing.get_context(self.start_method)
        self._prewarmed_landscapes = 0
        if self.start_method == "fork":
            #: Build each distinct world once in the parent BEFORE any
            #: worker forks: children then share the landscapes
            #: copy-on-write instead of each rebuilding them — the
            #: rebuild is what made an oversubscribed pool slower than
            #: serial.  Spawned workers can't inherit memory, so the
            #: prewarm is fork-only (they fall back to per-worker
            #: memos), and only scenarios flagged ``needs_landscape``
            #: trigger it — a smoke/bench grid never pays a world build.
            from repro.sweep.scenarios import (
                get_scenario,
                prewarm_shared_landscapes,
            )

            seeds = sorted({
                c.seed for c in cells
                if getattr(get_scenario(c.scenario), "needs_landscape",
                           False)
            })
            if seeds:
                self._prewarmed_landscapes = prewarm_shared_landscapes(
                    seeds
                )
        task_q = ctx.Queue(maxsize=self.queue_depth)
        result_q = ctx.Queue()
        result = SweepResult(out_dir=self.out_dir, total=len(cells))
        self._durations = {}
        self._cache_stats = {}

        by_id = {c.cell_id: c for c in cells}
        pending = deque(cells)
        retries: Dict[str, int] = {}
        inflight: Dict[int, Optional[str]] = {}  # worker -> started cell
        assigned: Dict[int, deque] = {}  # worker-unattributed dispatch order
        dispatched: Dict[str, int] = {}  # cell_id -> times queued
        completed: set = set()
        procs: Dict[int, Any] = {}
        next_worker_id = 0

        def spawn() -> None:
            nonlocal next_worker_id
            wid = next_worker_id
            next_worker_id += 1
            p = ctx.Process(
                target=_worker_main,
                args=(wid, self.out_dir, task_q, result_q,
                      self.context_cache_max),
                daemon=True,
            )
            p.start()
            procs[wid] = p
            inflight[wid] = None

        for _ in range(min(self.workers, max(1, len(cells)))):
            spawn()

        queued_not_started: deque = deque()

        def feed() -> None:
            while pending:
                cell = pending[0]
                try:
                    task_q.put_nowait(cell.to_dict())
                except queue_mod.Full:
                    return
                pending.popleft()
                dispatched[cell.cell_id] = dispatched.get(cell.cell_id, 0) + 1
                queued_not_started.append(cell.cell_id)

        def requeue_or_fail(cell_id: str, reason: str) -> None:
            """A worker died holding ``cell_id``: retry or mark failed."""
            result.retries += 1
            retries[cell_id] = retries.get(cell_id, 0) + 1
            if retries[cell_id] <= self.max_retries:
                pending.append(by_id[cell_id])
            else:
                record = dict(
                    by_id[cell_id].to_dict(), cell_id=cell_id,
                    status="failed", metrics={},
                    error=f"worker died while running this cell ({reason}); "
                          f"gave up after {retries[cell_id]} attempt(s)",
                )
                cell_dir = os.path.join(
                    self.out_dir, CELLS_DIRNAME, cell_id
                )
                os.makedirs(cell_dir, exist_ok=True)
                _write_cell_record(cell_dir, record)
                self._account(result, cell_id, "failed")
                completed.add(cell_id)

        while len(completed) < len(by_id):
            feed()
            try:
                msg = result_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                msg = None
            if msg is not None:
                kind = msg[0]
                if kind == "started":
                    _, wid, cell_id = msg
                    inflight[wid] = cell_id
                    try:
                        queued_not_started.remove(cell_id)
                    except ValueError:
                        pass
                elif kind == "done":
                    _, wid, cell_id, status, duration, size, evictions = msg
                    inflight[wid] = None
                    self._durations[cell_id] = duration
                    self._cache_stats[wid] = {
                        "size": size, "evictions": evictions,
                    }
                    if cell_id not in completed:
                        self._account(result, cell_id, status)
                        completed.add(cell_id)
                continue

            # No message this poll: check for dead workers.  The marker
            # file is the authoritative record of what a dead worker
            # held — its queue messages may have died with its feeder
            # thread.  Both the marker cell AND the last cell the
            # supervisor saw "started" need reconciling: a dying worker
            # can lose the "done" of its previous cell *and* the
            # "started" of its current one in the same feeder flush.  An
            # existing terminal cell.json means the cell finished but
            # its "done" was lost: artifacts are a pure function of the
            # cell, so the record on disk is final.
            dead = [wid for wid, p in procs.items() if not p.is_alive()]
            for wid in dead:
                p = procs.pop(wid)
                candidates = dict.fromkeys(
                    [inflight.pop(wid, None), self._read_marker(wid)]
                )
                for held in candidates:
                    if held is None or held in completed:
                        continue
                    try:
                        queued_not_started.remove(held)
                    except ValueError:
                        pass
                    status = self._cell_status_on_disk(held)
                    if status in ("ok", "error"):
                        self._account(result, held, status)
                        completed.add(held)
                    else:
                        requeue_or_fail(held, f"exit code {p.exitcode}")
                if len(completed) < len(by_id):
                    spawn()
            # Reconciliation for the narrow race where a worker died
            # between dequeuing a task and announcing "started": if no
            # workers hold anything, nothing is queued or pending, yet
            # cells remain, those dispatched cells were lost.
            if (
                not dead
                and not pending
                and all(v is None for v in inflight.values())
                and task_q.empty()
                and len(completed) < len(by_id)
            ):
                for cell_id in list(queued_not_started):
                    if cell_id not in completed:
                        queued_not_started.remove(cell_id)
                        requeue_or_fail(cell_id, "lost before start")

        # Shut the pool down.
        for _ in procs:
            try:
                task_q.put_nowait(None)
            except queue_mod.Full:
                break
        deadline = time.monotonic() + 5.0
        for p in procs.values():
            p.join(timeout=max(0.1, deadline - time.monotonic()))
            if p.is_alive():
                p.terminate()
        return result

    # -- bookkeeping -----------------------------------------------------

    def _read_marker(self, worker_id: int) -> Optional[str]:
        """The cell id a (dead) worker recorded as in-flight, if any."""
        try:
            with open(_marker_path(self.out_dir, worker_id), "r",
                      encoding="utf-8") as fh:
                return fh.read().strip() or None
        except OSError:
            return None

    def _cell_status_on_disk(self, cell_id: str) -> Optional[str]:
        """The terminal status already in ``cells/<id>/cell.json``, if any."""
        path = os.path.join(self.out_dir, CELLS_DIRNAME, cell_id,
                            CELL_FILENAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh).get("status")
        except (OSError, ValueError):
            return None

    def _account(self, result: SweepResult, cell_id: str,
                 status: str) -> None:
        result.statuses[cell_id] = status
        if status == "ok":
            result.ok += 1
        elif status == "error":
            result.error += 1
        else:
            result.failed += 1

    def _write_status(self, result: SweepResult) -> None:
        """Write the non-deterministic schedule record sweep_status.json."""
        from repro.sweep.scenarios import DEFAULT_CONTEXT_CACHE_MAX

        cache_stats = getattr(self, "_cache_stats", {})
        status = {
            "workers": self.workers,
            "start_method": self.start_method,
            "max_retries": self.max_retries,
            "wall_s": result.wall_s,
            "cells_total": result.total,
            "cells_ok": result.ok,
            "cells_error": result.error,
            "cells_failed": result.failed,
            "retries": result.retries,
            #: Worker-memo LRU accounting.  Sizes/evictions depend on
            #: which cells each worker happened to run, which is why they
            #: live here and never in the deterministic cell artifacts.
            "context_cache": {
                "max": (self.context_cache_max
                        if self.context_cache_max is not None
                        else DEFAULT_CONTEXT_CACHE_MAX),
                "evictions": sum(
                    s["evictions"] for s in cache_stats.values()
                ),
                "sizes": {
                    str(wid): s["size"]
                    for wid, s in sorted(cache_stats.items())
                },
            },
            #: Landscapes built in the parent pre-fork (0 for serial,
            #: spawn, or when every seed was already shared).
            "prewarmed_landscapes": getattr(
                self, "_prewarmed_landscapes", 0
            ),
            "durations_s": {
                k: round(v, 6)
                for k, v in sorted(getattr(self, "_durations", {}).items())
            },
        }
        with open(os.path.join(self.out_dir, STATUS_FILENAME), "w",
                  encoding="utf-8") as fh:
            fh.write(json.dumps(status, indent=2, sort_keys=True) + "\n")

    def _record_store_status(self, merged) -> None:
        """Note the reducer's store ingest in sweep_status.json.

        The status file is the sweep's non-deterministic record, which
        is exactly where a filesystem path belongs (the store's own
        ``logical_dump`` stays path-free for byte-comparisons).
        """
        path = os.path.join(self.out_dir, STATUS_FILENAME)
        with open(path, "r", encoding="utf-8") as fh:
            status = json.load(fh)
        status["store"] = {
            "path": merged.store_path,
            "rows_ingested": merged.store_rows,
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(status, indent=2, sort_keys=True) + "\n")
