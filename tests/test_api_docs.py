"""Tier-1 twin of ``tools/gen_api_docs.py --check``.

Fails when ``docs/API.md`` is stale relative to the public surface of
``repro`` — regenerate with::

    PYTHONPATH=src python tools/gen_api_docs.py
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import gen_api_docs  # noqa: E402


def test_api_md_is_fresh():
    """docs/API.md matches what the generator renders from source."""
    on_disk = (REPO_ROOT / "docs" / "API.md").read_text()
    assert on_disk == gen_api_docs.render(), (
        "docs/API.md is stale — regenerate with "
        "`PYTHONPATH=src python tools/gen_api_docs.py`"
    )


def test_render_covers_key_modules():
    """The generated reference includes every top-level subpackage."""
    text = gen_api_docs.render()
    for mod in ("repro.sweep.grid", "repro.obs.metrics", "repro.cli",
                "repro.sim.engine", "repro.radio.network"):
        assert f"## `{mod}`" in text, mod
