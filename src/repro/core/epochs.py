"""Epoch duration selection (paper section 3.2.2).

A zone's epoch is the averaging interval at which its metric is most
stable — the minimum of the Allan deviation over the zone's measurement
series.  :class:`EpochEstimator` wraps the search with WiScape's
operational concerns: irregular sample times (the series is re-gridded),
bounds on the allowed epoch, and a minimum history requirement before
trusting the estimate over the configured default.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.telemetry import get_telemetry
from repro.stats.allan import allan_deviation_profile, select_epoch_from_profile


class EpochEstimator:
    """Selects per-zone epoch durations from measurement history."""

    def __init__(
        self,
        min_epoch_s: float = 300.0,
        max_epoch_s: float = 4.0 * 3600.0,
        grid_s: float = 60.0,
        min_history_points: int = 60,
        candidate_count: int = 20,
        tolerance: float = 0.10,
    ):
        if min_epoch_s <= 0 or max_epoch_s <= min_epoch_s:
            raise ValueError("need 0 < min_epoch_s < max_epoch_s")
        self.min_epoch_s = min_epoch_s
        self.max_epoch_s = max_epoch_s
        self.grid_s = grid_s
        self.min_history_points = min_history_points
        self.candidate_count = candidate_count
        self.tolerance = tolerance

    def regrid(
        self, times_s: Sequence[float], values: Sequence[float]
    ) -> List[float]:
        """Average irregular samples onto a regular ``grid_s`` grid.

        Grid cells with no samples inherit the previous cell's value
        (zero-order hold), which keeps the Allan statistics defined
        without inventing variance.
        """
        if len(times_s) != len(values):
            raise ValueError("times and values must align")
        if not times_s:
            return []
        t0 = min(times_s)
        t1 = max(times_s)
        n_cells = int((t1 - t0) // self.grid_s) + 1
        sums = [0.0] * n_cells
        counts = [0] * n_cells
        for t, v in zip(times_s, values):
            i = int((t - t0) // self.grid_s)
            sums[i] += v
            counts[i] += 1
        out: List[float] = []
        last: Optional[float] = None
        for s, c in zip(sums, counts):
            if c > 0:
                last = s / c
            if last is not None:
                out.append(last)
        return out

    def candidate_taus(self, span_s: float) -> List[float]:
        """Log-spaced candidate epochs within bounds and the data span."""
        hi = min(self.max_epoch_s, span_s / 4.0)
        lo = max(self.min_epoch_s, self.grid_s)
        if hi <= lo:
            return [lo]
        return [float(x) for x in np.geomspace(lo, hi, num=self.candidate_count)]

    def profile(
        self, times_s: Sequence[float], values: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """(tau, Allan deviation) pairs over the candidate epochs."""
        series = self.regrid(times_s, values)
        if len(series) < 4:
            return []
        span = len(series) * self.grid_s
        return allan_deviation_profile(
            series, self.grid_s, self.candidate_taus(span), normalize=True
        )

    def estimate(
        self,
        times_s: Sequence[float],
        values: Sequence[float],
        fallback_s: float,
    ) -> float:
        """The zone's epoch: argmin Allan deviation, or the fallback.

        Falls back when history is too short for a trustworthy profile.
        The result is clamped to [min_epoch_s, max_epoch_s].
        """
        tel = get_telemetry()
        series = self.regrid(times_s, values)
        if len(series) < self.min_history_points:
            if tel.enabled:
                tel.metrics.counter("epochs.estimate_fallbacks").inc()
            return float(min(max(fallback_s, self.min_epoch_s), self.max_epoch_s))
        span = len(series) * self.grid_s
        with tel.span("epochs.allan_profile"):
            profile = allan_deviation_profile(
                series, self.grid_s, self.candidate_taus(span), normalize=True
            )
        if not profile:
            if tel.enabled:
                tel.metrics.counter("epochs.estimate_fallbacks").inc()
            return float(min(max(fallback_s, self.min_epoch_s), self.max_epoch_s))
        best_tau = select_epoch_from_profile(profile, tolerance=self.tolerance)
        if tel.enabled:
            tel.metrics.counter("epochs.estimates").inc()
        return float(min(max(best_tau, self.min_epoch_s), self.max_epoch_s))
