"""Measurement channel: simulated transfers over a ground-truth link.

A :class:`MeasurementChannel` binds a carrier within a
:class:`~repro.radio.network.Landscape` to a client RNG and produces the
three measurement primitives the paper uses:

* ``udp_train`` — ``n`` packets sent at a fixed inter-packet delay
  through a bottleneck-queue model; per-packet receive timestamps carry
  the link's jitter, so goodput/loss/IPDV estimators see realistic
  variance (this is what makes "how many packets for 97% accuracy",
  paper Table 5, a non-trivial question);
* ``tcp_download`` — slow-start plus capacity-limited bulk transfer,
  optionally packetized into records;
* ``ping_series`` — periodic small probes yielding RTT samples and
  failures (blackout patches make every probe fail).

Per-client heterogeneity enters through ``rate_bias`` (modem/device
differences) and the client RNG (independent sampling noise), which is
what the composability analysis (paper section 3.3) exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.coords import GeoPoint
from repro.network.metrics import goodput_bps, ipdv_jitter_s, loss_rate
from repro.network.packet import PacketRecord
from repro.obs.telemetry import get_telemetry
from repro.radio.network import Landscape, LinkState, LinkStateBatch
from repro.radio.technology import NetworkId

#: TCP's long-run efficiency relative to UDP saturation on a clean link.
TCP_EFFICIENCY = 0.96
#: Slot-scheduler bimodality for *queued* packets: cellular MACs
#: (EV-DO/HSPA) time-multiplex users, so two back-to-back packets either
#: drain within one scheduling grant (a short gap at the slot's peak
#: rate) or straddle grants (a long gap).  The mix keeps the long-run
#: mean equal to the fluid service time — sustained throughput is
#: unchanged — but breaks the packet-pair assumption that one gap equals
#: one transmission time, which is exactly why Pathload/WBest mislead on
#: cellular links (paper section 3.3.1).
SLOT_FAST_PROB = 0.45
SLOT_FAST_FACTOR = 0.15
#: Correlation time of per-packet delay jitter.  Path delay noise is
#: strongly correlated at millisecond separations (the queue state
#: barely changes between two back-to-back packets) and decorrelates
#: over tens of milliseconds — which is why packet-pair gaps expose the
#: slot bimodality cleanly instead of drowning it in jitter.
JITTER_CORR_TIME_S = 0.020
#: Initial congestion window (segments), 2011-era default.
TCP_INIT_CWND = 3
TCP_MSS_BYTES = 1460


@dataclass(frozen=True)
class UdpTrainResult:
    """Outcome of a UDP packet-train measurement.

    ``rate_samples_bps`` holds one instantaneous-rate estimate per
    delivered packet (the linearized reciprocal of the jittered packet
    gap — first-order, so unbiased around the true rate).  These are the
    "client collected packets" whose averages the paper's Table 5
    sample-count search evaluates.
    """

    records: List[PacketRecord]
    throughput_bps: float
    loss_rate: float
    jitter_s: float
    rate_samples_bps: List[float]
    link: LinkState


@dataclass(frozen=True)
class TcpDownloadResult:
    """Outcome of a TCP bulk download."""

    size_bytes: int
    duration_s: float
    throughput_bps: float
    records: List[PacketRecord]
    link: LinkState


@dataclass(frozen=True)
class PingResult:
    """Outcome of a ping series: successful RTTs plus failure count."""

    rtts_s: List[float]
    failures: int
    link: LinkState

    @property
    def mean_rtt_s(self) -> float:
        return sum(self.rtts_s) / len(self.rtts_s) if self.rtts_s else float("nan")

    @property
    def failure_rate(self) -> float:
        total = len(self.rtts_s) + self.failures
        return self.failures / total if total else 0.0


class MeasurementChannel:
    """Simulated measurement path for one client on one carrier."""

    def __init__(
        self,
        landscape: Landscape,
        network: NetworkId,
        rng: np.random.Generator,
        rate_bias: float = 1.0,
    ):
        if rate_bias <= 0:
            raise ValueError("rate_bias must be positive")
        self.landscape = landscape
        self.network = network
        self.rng = rng
        self.rate_bias = float(rate_bias)

    def link_at(self, point: GeoPoint, t: float) -> LinkState:
        """Ground-truth link state seen by this client (bias applied).

        Served through the network's quantized point cache — repeated
        measurements at (nearly) the same spot skip the spatial-field
        math entirely.
        """
        raw = self.landscape.link_state_fast(self.network, point, t)
        if self.rate_bias == 1.0:
            return raw
        return LinkState(
            network=raw.network,
            downlink_bps=raw.downlink_bps * self.rate_bias,
            uplink_bps=raw.uplink_bps * self.rate_bias,
            rtt_s=raw.rtt_s,
            jitter_std_s=raw.jitter_std_s,
            loss_rate=raw.loss_rate,
            available=raw.available,
        )

    def link_at_batch(self, points, times, use_cache: bool = True) -> LinkStateBatch:
        """Vectorized :meth:`link_at` over N (point, time) pairs."""
        batch = self.landscape.link_state_batch(
            self.network, points, times, use_cache=use_cache
        )
        if self.rate_bias == 1.0:
            return batch
        return batch.scaled(self.rate_bias)

    # -- UDP ---------------------------------------------------------------

    def udp_train(
        self,
        point: GeoPoint,
        t: float,
        n_packets: int = 100,
        packet_size_bytes: int = 1200,
        inter_packet_delay_s: float = 0.001,
        direction: str = "down",
    ) -> UdpTrainResult:
        """Send a UDP train and return per-packet records plus summaries.

        Packets pass a single bottleneck queue at the link's sustained
        rate; receive times add half the RTT and an iid jitter draw.  A
        blacked-out link loses (almost) everything.  ``direction`` picks
        the downlink (default) or uplink rate; the paper collected both
        directions but analyzes the downlink.

        Implementation note: random variates are pre-drawn in four blocks
        (slot choices, loss trials, jitter innovations, rate noise) and
        the sequential queue/AR(1) recurrences run over plain floats, so
        the per-packet cost is a few hundred nanoseconds instead of four
        scalar RNG calls.  The draw *order* therefore differs from the
        original per-packet implementation (kept as
        :meth:`udp_train_reference`); results agree in distribution, not
        bit for bit.
        """
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up'")
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("channel.udp_trains").inc()
        link = self.link_at(point, t)
        n = n_packets
        u_slot = self.rng.uniform(size=n).tolist()
        u_loss = self.rng.uniform(size=n).tolist()
        eps_jit = self.rng.normal(0.0, 1.0, size=n)
        eps_rate = self.rng.normal(0.0, 1.0, size=n)
        return self._udp_train_core(
            link, t, n, packet_size_bytes, inter_packet_delay_s, direction,
            u_slot, u_loss, eps_jit, eps_rate,
        )

    def udp_train_batch(
        self,
        points,
        times,
        n_packets: int = 100,
        packet_size_bytes: int = 1200,
        inter_packet_delay_s: float = 0.001,
        direction: str = "down",
    ) -> List[UdpTrainResult]:
        """Run one UDP train per (point, time) pair, amortizing the setup.

        The per-train link states come from a single batched
        ground-truth query and all random variates from one block draw
        per kind, so the fixed per-train overhead (spatial fields,
        temporal octaves, RNG dispatch) is paid once for the whole
        fleet.  Dataset generators use this to simulate a day of trains
        at a time.
        """
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up'")
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("channel.udp_train_batches").inc()
            tel.metrics.histogram(
                "channel.udp_trains_per_batch",
                (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0),
            ).observe(np.atleast_1d(np.asarray(times, dtype=float)).size)
        batch = self.link_at_batch(points, times)
        t_arr = np.broadcast_to(
            np.asarray(times, dtype=float), (len(batch),)
        )
        m = len(batch)
        n = n_packets
        u_slot = self.rng.uniform(size=(m, n))
        u_loss = self.rng.uniform(size=(m, n))
        eps_jit = self.rng.normal(0.0, 1.0, size=(m, n))
        eps_rate = self.rng.normal(0.0, 1.0, size=(m, n))
        return [
            self._udp_train_core(
                batch.state(i), float(t_arr[i]), n, packet_size_bytes,
                inter_packet_delay_s, direction,
                u_slot[i].tolist(), u_loss[i].tolist(), eps_jit[i], eps_rate[i],
            )
            for i in range(m)
        ]

    def _udp_train_core(
        self,
        link: LinkState,
        t: float,
        n: int,
        packet_size_bytes: int,
        inter_packet_delay_s: float,
        direction: str,
        u_slot: List[float],
        u_loss: List[float],
        eps_jit: np.ndarray,
        eps_rate: np.ndarray,
    ) -> UdpTrainResult:
        """Shared train simulation over pre-drawn random blocks.

        ``eps_jit``/``eps_rate`` are standard normals, scaled here by the
        link's jitter and the train's rate-noise level.  The sequential
        queue and AR(1) recurrences run over plain floats; goodput, loss,
        and IPDV are accumulated in the same pass (semantics identical to
        :func:`goodput_bps` / :func:`loss_rate` / :func:`ipdv_jitter_s`).
        """
        rate_bps = link.downlink_bps if direction == "down" else link.uplink_bps
        service_s = packet_size_bytes * 8.0 / max(rate_bps, 1e3)
        p_loss = 0.9 if not link.available else link.loss_rate

        # Per-packet instantaneous rate noise: delay jitter mapped into
        # the rate domain to first order (avoids the 1/gap Jensen bias a
        # naive reciprocal would introduce).  Noisier links (large
        # jitter relative to service time) give noisier per-packet rate
        # estimates, which is what drives up the packet counts needed
        # for accurate estimation on the more variable networks.
        rate_noise_rel = min(
            0.40, 0.30 * (link.jitter_std_s / service_s) ** 0.15
        )
        nominal_rate = packet_size_bytes * 8.0 / service_s

        slot_slow_factor = (1.0 - SLOT_FAST_PROB * SLOT_FAST_FACTOR) / (
            1.0 - SLOT_FAST_PROB
        )
        fast_service = service_s * SLOT_FAST_FACTOR
        slow_service = service_s * slot_slow_factor
        half_rtt = link.rtt_s / 2.0
        jitter_floor = -0.8 * service_s
        jitter_std = link.jitter_std_s
        inv_corr = 1.0 / JITTER_CORR_TIME_S
        exp = math.exp
        sqrt = math.sqrt
        jit = (eps_jit * jitter_std).tolist()

        records: List[PacketRecord] = []
        append = records.append
        delivered_idx: List[int] = []
        queue_free_at = t
        jitter = 0.0
        prev_depart = t
        # In-loop metric accumulators (same definitions as metrics.py).
        max_recv = -math.inf
        ipdv_sum = 0.0
        ipdv_cnt = 0
        prev_seq = -2
        prev_recv = 0.0
        prev_send = 0.0
        for seq in range(n):
            send = t + seq * inter_packet_delay_s
            if send < queue_free_at:
                # Queued behind the previous packet: the gap to the next
                # grant is bimodal (see SLOT_FAST_PROB above).
                this_service = (
                    fast_service if u_slot[seq] < SLOT_FAST_PROB else slow_service
                )
            else:
                this_service = service_s
            depart = (send if send > queue_free_at else queue_free_at) + this_service
            queue_free_at = depart
            if u_loss[seq] < p_loss:
                append(PacketRecord(seq, send, None, packet_size_bytes))
                continue
            # AR(1) jitter: correlation decays with the packet spacing.
            rho = exp(-(depart - prev_depart) * inv_corr)
            jitter = rho * jitter + sqrt(1.0 - rho * rho) * jit[seq]
            prev_depart = depart
            noise = jitter if jitter > jitter_floor else jitter_floor
            recv = depart + half_rtt + noise
            append(PacketRecord(seq, send, recv, packet_size_bytes))
            delivered_idx.append(seq)
            if recv > max_recv:
                max_recv = recv
            if seq == prev_seq + 1:
                d = (recv - prev_recv) - (send - prev_send)
                ipdv_sum += d if d >= 0.0 else -d
                ipdv_cnt += 1
            prev_seq = seq
            prev_recv = recv
            prev_send = send

        delivered = len(delivered_idx)
        duration = max_recv - t  # first send is t (seq 0)
        throughput = (
            delivered * packet_size_bytes * 8.0 / duration
            if delivered and duration > 0
            else 0.0
        )
        rate_samples = np.maximum(
            nominal_rate * 0.05,
            nominal_rate * (1.0 + rate_noise_rel * eps_rate[delivered_idx]),
        ).tolist()

        return UdpTrainResult(
            records=records,
            throughput_bps=throughput,
            loss_rate=(n - delivered) / n,
            jitter_s=ipdv_sum / ipdv_cnt if ipdv_cnt else 0.0,
            rate_samples_bps=rate_samples,
            link=link,
        )

    def udp_train_reference(
        self,
        point: GeoPoint,
        t: float,
        n_packets: int = 100,
        packet_size_bytes: int = 1200,
        inter_packet_delay_s: float = 0.001,
        direction: str = "down",
    ) -> UdpTrainResult:
        """Original per-packet UDP train (scalar RNG calls, exact fields).

        Kept as the behavioral reference for :meth:`udp_train`: the
        distribution-equivalence tests and the performance benchmarks
        compare the vectorized path against this one.
        """
        if n_packets < 1:
            raise ValueError("n_packets must be >= 1")
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up'")
        raw = self.landscape.link_state(self.network, point, t)
        link = LinkState(
            network=raw.network,
            downlink_bps=raw.downlink_bps * self.rate_bias,
            uplink_bps=raw.uplink_bps * self.rate_bias,
            rtt_s=raw.rtt_s,
            jitter_std_s=raw.jitter_std_s,
            loss_rate=raw.loss_rate,
            available=raw.available,
        )
        rate_bps = link.downlink_bps if direction == "down" else link.uplink_bps
        service_s = packet_size_bytes * 8.0 / max(rate_bps, 1e3)
        p_loss = 0.9 if not link.available else link.loss_rate
        rate_noise_rel = min(
            0.40, 0.30 * (link.jitter_std_s / service_s) ** 0.15
        )
        nominal_rate = packet_size_bytes * 8.0 / service_s
        slot_slow_factor = (1.0 - SLOT_FAST_PROB * SLOT_FAST_FACTOR) / (
            1.0 - SLOT_FAST_PROB
        )

        records: List[PacketRecord] = []
        rate_samples: List[float] = []
        queue_free_at = t
        jitter = 0.0
        prev_depart = t
        for seq in range(n_packets):
            send = t + seq * inter_packet_delay_s
            if send < queue_free_at:
                if self.rng.uniform() < SLOT_FAST_PROB:
                    this_service = service_s * SLOT_FAST_FACTOR
                else:
                    this_service = service_s * slot_slow_factor
            else:
                this_service = service_s
            depart = max(send, queue_free_at) + this_service
            queue_free_at = depart
            if self.rng.uniform() < p_loss:
                records.append(PacketRecord(seq, send, None, packet_size_bytes))
                continue
            rho = math.exp(-max(depart - prev_depart, 0.0) / JITTER_CORR_TIME_S)
            jitter = rho * jitter + math.sqrt(
                max(0.0, 1.0 - rho * rho)
            ) * float(self.rng.normal(0.0, link.jitter_std_s))
            prev_depart = depart
            recv = depart + link.rtt_s / 2.0 + max(jitter, -0.8 * service_s)
            records.append(PacketRecord(seq, send, recv, packet_size_bytes))
            rate_samples.append(
                max(
                    nominal_rate * 0.05,
                    nominal_rate
                    * (1.0 + float(self.rng.normal(0.0, rate_noise_rel))),
                )
            )

        return UdpTrainResult(
            records=records,
            throughput_bps=goodput_bps(records),
            loss_rate=loss_rate(records),
            jitter_s=ipdv_jitter_s(records),
            rate_samples_bps=rate_samples,
            link=link,
        )

    # -- TCP ---------------------------------------------------------------

    def tcp_download(
        self,
        point: GeoPoint,
        t: float,
        size_bytes: int = 1_000_000,
        packetize: bool = False,
        max_records: int = 2000,
    ) -> TcpDownloadResult:
        """Download ``size_bytes`` over TCP and return duration/throughput.

        Model: slow start from :data:`TCP_INIT_CWND` doubling each RTT
        until the window rate reaches the link's TCP share
        (:data:`TCP_EFFICIENCY` of sustained capacity), then a
        capacity-limited bulk phase.  Loss events cut the effective bulk
        rate mildly (cellular links mask most loss at the RLC layer, and
        the paper observes ~0 loss).  ``packetize=True`` additionally
        emits up to ``max_records`` per-packet records for estimators
        that want packet granularity (paper Table 5's TCP columns).
        """
        if size_bytes < 1:
            raise ValueError("size_bytes must be >= 1")
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("channel.tcp_downloads").inc()
        # A bulk download lasting several seconds averages over the fast
        # fading; sample the link across the transfer window in one
        # batch query (the per-point quantities are computed once).
        window = self.link_at_batch(point, [t, t + 2.5, t + 5.0])
        link = window.state(0)
        if not link.available:
            # A blacked-out link stalls; model as an aborted, very slow
            # transfer dominated by timeouts.
            duration = max(30.0, size_bytes * 8.0 / 1e4)
            return TcpDownloadResult(size_bytes, duration, size_bytes * 8.0 / duration, [], link)

        mean_capacity = float(window.downlink_bps.mean())
        link = LinkState(
            network=link.network,
            downlink_bps=mean_capacity,
            uplink_bps=link.uplink_bps,
            rtt_s=link.rtt_s,
            jitter_std_s=link.jitter_std_s,
            loss_rate=link.loss_rate,
            available=link.available,
        )

        bulk_rate = link.downlink_bps * TCP_EFFICIENCY
        bulk_rate *= max(0.3, 1.0 - 15.0 * link.loss_rate)
        rtt = link.rtt_s

        remaining = float(size_bytes)
        duration = rtt  # connection setup: one round trip (SYN/SYN-ACK)
        cwnd = TCP_INIT_CWND
        while remaining > 0:
            window_bytes = cwnd * TCP_MSS_BYTES
            round_rate_bps = window_bytes * 8.0 / rtt
            if round_rate_bps >= bulk_rate:
                break
            sent = min(window_bytes, remaining)
            remaining -= sent
            duration += rtt
            cwnd *= 2
        if remaining > 0:
            duration += remaining * 8.0 / bulk_rate

        # Per-download sampling noise: short flows on real links vary a
        # few percent run to run even under identical conditions.
        duration *= max(0.5, 1.0 + float(self.rng.normal(0.0, 0.02)))
        throughput = size_bytes * 8.0 / duration

        records: List[PacketRecord] = []
        if packetize:
            n = min(max_records, max(1, int(math.ceil(size_bytes / TCP_MSS_BYTES))))
            spacing = duration / n
            sends = t + spacing * np.arange(n)
            jitters = self.rng.normal(0.0, link.jitter_std_s, size=n)
            recvs = sends + rtt / 2.0 + np.maximum(jitters, -0.4 * spacing)
            records = [
                PacketRecord(seq, float(sends[seq]), float(recvs[seq]), TCP_MSS_BYTES)
                for seq in range(n)
            ]

        return TcpDownloadResult(
            size_bytes=size_bytes,
            duration_s=duration,
            throughput_bps=throughput,
            records=records,
            link=link,
        )

    # -- Ping --------------------------------------------------------------

    def ping_series(
        self,
        point: GeoPoint,
        t: float,
        count: int = 12,
        interval_s: float = 5.0,
        timeout_s: float = 2.0,
    ) -> PingResult:
        """Send ``count`` pings; return successful RTTs and failure count.

        The per-probe link states come from one batched ground-truth
        query (the dominant cost of the original per-ping loop), and the
        loss/jitter trials are drawn as blocks.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter("channel.ping_series").inc()
        times = t + interval_s * np.arange(count)
        batch = self.link_at_batch(point, times)
        u_loss = self.rng.uniform(size=count)
        noise = np.abs(self.rng.normal(0.0, 1.0, size=count)) * batch.jitter_std_s
        rtt = batch.rtt_s + noise
        ok = batch.available & (u_loss >= batch.loss_rate) & (rtt <= timeout_s)
        rtts = rtt[ok].tolist()
        return PingResult(
            rtts_s=rtts,
            failures=int(count - len(rtts)),
            link=batch.state(count - 1),
        )
