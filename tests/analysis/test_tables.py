"""Tests for the text-table renderer."""

import pytest

from repro.analysis.tables import TextTable


class TestTextTable:
    def test_render_aligns(self):
        t = TextTable(["name", "value"])
        t.add_row("a", 1)
        t.add_row("long-name", 12345)
        text = t.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_formats_applied(self):
        t = TextTable(["x"], formats=[".2f"])
        t.add_row(3.14159)
        assert "3.14" in t.render()

    def test_cell_count_checked(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_format_length_checked(self):
        with pytest.raises(ValueError):
            TextTable(["a", "b"], formats=[".2f"])

    def test_indent(self):
        t = TextTable(["a"])
        t.add_row("x")
        assert all(line.startswith("  ") for line in t.render(indent="  ").splitlines())
