"""Docstring-coverage ratchet for the public surface of ``src/repro``.

Counts, per module, the public definitions that carry a docstring: the
module itself, top-level public classes and functions, and public
methods of public classes (AST-based — nothing is imported, so a
syntax-clean tree is the only requirement).  ``@property`` setters,
``__dunder__`` methods other than ``__init__``, and anything prefixed
with ``_`` are out of scope.

The pinned per-module floors live in ``tools/docstring_baseline.json``.
The gate fails when any module's coverage drops below its floor, so
coverage can only ratchet upward::

    python tools/check_docstrings.py              # gate (CI + tier-1 test)
    python tools/check_docstrings.py --update-baseline
    python tools/check_docstrings.py --list       # per-module table

New modules without a baseline entry must meet ``DEFAULT_FLOOR``.
After improving a module's docstrings, re-pin with
``--update-baseline`` so the gain is locked in.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "tools" / "docstring_baseline.json"

#: Floor applied to modules absent from the baseline (new files).
DEFAULT_FLOOR = 80.0


def _is_public(name):
    return not name.startswith("_") or name == "__init__"


def _has_doc(node):
    return ast.get_docstring(node) is not None


def module_stats(path):
    """``(documented, total)`` public definitions for one source file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    documented = int(_has_doc(tree))
    total = 1
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name) or node.name == "__init__":
                continue
            total += 1
            documented += int(_has_doc(node))
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            total += 1
            documented += int(_has_doc(node))
            for member in node.body:
                if not isinstance(member,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not _is_public(member.name) or member.name == "__init__":
                    continue
                # Property setters share the getter's name and doc.
                if any(isinstance(d, ast.Attribute) and
                       d.attr in ("setter", "deleter")
                       for d in member.decorator_list):
                    continue
                total += 1
                documented += int(_has_doc(member))
    return documented, total


def collect(src_root=SRC_ROOT):
    """``{relative_module_path: (documented, total, pct)}`` for the tree."""
    out = {}
    for path in sorted(src_root.rglob("*.py")):
        rel = str(path.relative_to(src_root.parent))
        documented, total = module_stats(path)
        pct = 100.0 * documented / total if total else 100.0
        out[rel] = (documented, total, round(pct, 1))
    return out


def load_baseline(path=BASELINE_PATH):
    if not Path(path).exists():
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def check(stats, baseline):
    """Failure messages for every module below its pinned floor."""
    failures = []
    for rel, (documented, total, pct) in sorted(stats.items()):
        floor = baseline.get(rel, DEFAULT_FLOOR)
        if pct < floor:
            failures.append(
                f"{rel}: {pct:.1f}% ({documented}/{total}) "
                f"below pinned floor {floor:.1f}%"
            )
    for rel in sorted(set(baseline) - set(stats)):
        failures.append(f"{rel}: pinned in baseline but missing from tree")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update-baseline", action="store_true",
                        help="re-pin the baseline to current coverage")
    parser.add_argument("--list", action="store_true",
                        help="print the per-module coverage table")
    args = parser.parse_args(argv)

    stats = collect()
    if args.list:
        for rel, (documented, total, pct) in sorted(
                stats.items(), key=lambda kv: kv[1][2]):
            print(f"{pct:5.1f}%  {documented:3d}/{total:<3d}  {rel}")
        return 0
    if args.update_baseline:
        baseline = {rel: pct for rel, (_, _, pct) in sorted(stats.items())}
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"pinned {len(baseline)} module floors to {BASELINE_PATH}")
        return 0

    failures = check(stats, load_baseline())
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(
            "\nDocstring coverage regressed. Document the flagged symbols "
            "(or, after a genuine improvement elsewhere, re-pin with "
            "`python tools/check_docstrings.py --update-baseline`).",
        )
        return 1
    covered = sum(d for d, _, _ in stats.values())
    total = sum(t for _, t, _ in stats.values())
    print(
        f"docstring coverage OK: {100.0 * covered / total:.1f}% "
        f"({covered}/{total} public symbols across {len(stats)} modules)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
