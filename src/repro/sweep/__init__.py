"""Parallel sharded experiment sweeps (`repro sweep`).

Shards a declarative grid of (scenario, seed, config-override) cells
across a multiprocessing worker pool with deterministic per-cell RNG:
results are byte-identical regardless of worker count or schedule.  See
DESIGN.md §9 for the architecture and docs/EXPERIMENTS-GUIDE.md for the
paper-figure grids built on top of it.
"""

from repro.sweep.grid import (
    CELL_FILENAME,
    CELLS_DIRNAME,
    STATUS_FILENAME,
    SUMMARY_FILENAME,
    SWEEP_MANIFEST_FILENAME,
    SweepCell,
    SweepGrid,
    SweepManifest,
)
from repro.sweep.reduce import MergeResult, load_summary, merge_cells
from repro.sweep.runner import SweepResult, SweepRunner, pick_start_method
from repro.sweep.scenarios import (
    WorkerContext,
    get_scenario,
    preset_grid,
    preset_names,
    scenario,
    scenario_names,
)

__all__ = [
    "SweepCell",
    "SweepGrid",
    "SweepManifest",
    "SweepRunner",
    "SweepResult",
    "WorkerContext",
    "MergeResult",
    "merge_cells",
    "load_summary",
    "pick_start_method",
    "scenario",
    "get_scenario",
    "scenario_names",
    "preset_grid",
    "preset_names",
    "SWEEP_MANIFEST_FILENAME",
    "SUMMARY_FILENAME",
    "STATUS_FILENAME",
    "CELLS_DIRNAME",
    "CELL_FILENAME",
]
