"""Tests for the length-prefixed wire protocol (repro.serve.wire)."""

import asyncio
import json
import math
import struct

import pytest

from repro.clients.protocol import (
    MeasurementReport,
    MeasurementTask,
    MeasurementType,
)
from repro.geo.coords import GeoPoint
from repro.radio.technology import NetworkId
from repro.serve.wire import (
    FRAME_TYPES,
    LENGTH_PREFIX,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameTooLargeError,
    ProtocolError,
    TruncatedFrameError,
    WireError,
    decode_payload,
    encode_frame,
    read_frame,
    report_from_wire,
    report_to_wire,
    task_from_wire,
    task_to_wire,
)


def read_from_bytes(data: bytes, max_frame_bytes: int = MAX_FRAME_BYTES):
    """Run read_frame against an in-memory stream fed exactly ``data``."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader, max_frame_bytes)

    return asyncio.run(scenario())


class TestFraming:
    def test_round_trip(self):
        message = {"type": "PING", "seq": 7}
        assert read_from_bytes(encode_frame(message)) == message

    def test_prefix_is_big_endian_length(self):
        frame = encode_frame({"type": "BYE"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:]) == {"type": "BYE"}

    def test_canonical_payload_bytes(self):
        # Key order in the dict must not affect the bytes on the wire.
        a = encode_frame({"type": "ACK", "seq": 1, "task_id": 2})
        b = encode_frame({"task_id": 2, "seq": 1, "type": "ACK"})
        assert a == b

    def test_clean_eof_between_frames_is_none(self):
        assert read_from_bytes(b"") is None

    def test_truncated_length_prefix(self):
        with pytest.raises(TruncatedFrameError):
            read_from_bytes(b"\x00\x00")

    def test_truncated_payload(self):
        frame = encode_frame({"type": "PING"})
        with pytest.raises(TruncatedFrameError):
            read_from_bytes(frame[:-3])

    def test_oversized_length_prefix(self):
        data = LENGTH_PREFIX.pack(MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameTooLargeError):
            read_from_bytes(data)

    def test_oversized_against_negotiated_limit(self):
        frame = encode_frame({"type": "PING", "pad": "x" * 128})
        with pytest.raises(FrameTooLargeError):
            read_from_bytes(frame, max_frame_bytes=64)

    def test_encode_rejects_oversized(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"type": "PING", "pad": "x" * 128},
                         max_frame_bytes=64)

    def test_encode_requires_type(self):
        with pytest.raises(ProtocolError):
            encode_frame({"seq": 1})

    def test_payload_not_json(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"{nope")

    def test_payload_not_utf8(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe")

    def test_payload_not_object(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1,2]")

    def test_payload_without_string_type(self):
        with pytest.raises(ProtocolError):
            decode_payload(b'{"type": 3}')

    def test_every_error_is_a_wire_error_with_code(self):
        for exc_type, code in [
            (FrameTooLargeError, "frame-too-large"),
            (TruncatedFrameError, "truncated-frame"),
            (ProtocolError, "bad-frame"),
        ]:
            exc = exc_type("detail")
            assert isinstance(exc, WireError)
            assert exc.code == code

    def test_frame_types_cover_protocol(self):
        for kind in ("HELLO", "WELCOME", "POLL", "TASK", "REPORT", "ACK",
                     "RETRY", "PING", "PONG", "STATS", "STATS_REPLY",
                     "ERROR", "BYE"):
            assert kind in FRAME_TYPES
        assert PROTOCOL_VERSION == 1


class TestTaskCodec:
    def make_task(self, **overrides):
        fields = dict(
            task_id=42,
            network=NetworkId.NET_B,
            kind=MeasurementType.UDP_TRAIN,
            zone_id=(3, -2),
            issued_at_s=120.0,
            deadline_s=180.0,
            params={"n_packets": 50.0},
        )
        fields.update(overrides)
        return MeasurementTask(**fields)

    def test_round_trip(self):
        task = self.make_task()
        assert task_from_wire(task_to_wire(task)) == task

    def test_round_trip_through_json(self):
        task = self.make_task(zone_id=None, deadline_s=None)
        wire_dict = json.loads(json.dumps(task_to_wire(task)))
        assert task_from_wire(wire_dict) == task

    def test_malformed_raises_protocol_error(self):
        good = task_to_wire(self.make_task())
        for key, value in [("network", "NetZ"), ("kind", "bogus"),
                           ("task_id", None), ("zone_id", [1])]:
            broken = dict(good)
            broken[key] = value
            with pytest.raises(ProtocolError):
                task_from_wire(broken)


class TestReportCodec:
    def make_report(self, **overrides):
        fields = dict(
            task_id=42,
            client_id="c-001",
            network=NetworkId.NET_A,
            kind=MeasurementType.PING,
            start_s=60.0,
            end_s=61.0,
            point=GeoPoint(43.0731, -89.4012),
            speed_ms=3.5,
            value=0.042,
            samples=[0.040, 0.042, 0.044],
            extras={"loss": 0.1},
        )
        fields.update(overrides)
        return MeasurementReport(**fields)

    def test_round_trip(self):
        report = self.make_report()
        assert report_from_wire(report_to_wire(report)) == report

    def test_floats_survive_json_exactly(self):
        # The WAL byte-identity guarantee rests on exact float
        # round-trips through repr-based JSON serialization.
        report = self.make_report(value=0.1 + 0.2, speed_ms=1.0 / 3.0)
        wire_dict = json.loads(json.dumps(
            report_to_wire(report), sort_keys=True, separators=(",", ":")
        ))
        restored = report_from_wire(wire_dict)
        assert restored.value == report.value
        assert restored.speed_ms == report.speed_ms

    def test_nan_value_round_trips(self):
        # A failed ping's primary value is NaN; non-strict JSON carries it.
        report = self.make_report(value=float("nan"), samples=[])
        wire_dict = json.loads(json.dumps(report_to_wire(report)))
        assert math.isnan(report_from_wire(wire_dict).value)

    def test_malformed_raises_protocol_error(self):
        good = report_to_wire(self.make_report())
        for key, value in [("network", "NetZ"), ("kind", "bogus"),
                           ("lat", "north"), ("start_s", None)]:
            broken = dict(good)
            broken[key] = value
            with pytest.raises(ProtocolError):
                report_from_wire(broken)

    def test_missing_key_raises_protocol_error(self):
        good = report_to_wire(self.make_report())
        del good["client_id"]
        with pytest.raises(ProtocolError):
            report_from_wire(good)
