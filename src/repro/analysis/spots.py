"""Representative spot selection.

The paper does not measure at arbitrary points: "we selected
representative zones with overall performance variability for NetB that
was between 2% and 8%" (section 3.1).  This helper reproduces that
selection: scan candidate points near a region anchor and pick the one
whose local field is flattest — i.e. where measurements collected while
driving a small loop (the Proximate pattern) best match the static
center, across all monitored carriers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.geo.coords import GeoPoint, destination_point
from repro.radio.network import Landscape
from repro.radio.technology import NetworkId


def spot_flatness(
    landscape: Landscape,
    point: GeoPoint,
    networks: Sequence[NetworkId],
    loop_radius_m: float = 200.0,
    n_loop_points: int = 8,
    at_s: float = 0.0,
) -> float:
    """Worst-carrier relative mismatch between a loop's mean and the center.

    0 means measurements around the loop average exactly to the center
    value for every carrier; larger values mean a sloped field.
    """
    worst = 0.0
    for net in networks:
        center = landscape.link_state(net, point, at_s).downlink_bps
        if center <= 0:
            return float("inf")
        loop = [
            landscape.link_state(
                net,
                destination_point(point, 360.0 * k / n_loop_points, loop_radius_m),
                at_s,
            ).downlink_bps
            for k in range(n_loop_points)
        ]
        mismatch = abs(sum(loop) / len(loop) - center) / center
        worst = max(worst, mismatch)
    return worst


def select_representative_spot(
    landscape: Landscape,
    anchor: GeoPoint,
    networks: Sequence[NetworkId],
    search_radius_m: float = 2500.0,
    grid_step_m: float = 500.0,
    loop_radius_m: float = 200.0,
) -> GeoPoint:
    """The flattest candidate point near ``anchor`` (paper's zone pick).

    Scans a square grid of candidates and returns the one minimizing
    :func:`spot_flatness`.  Deterministic; also avoids failure patches
    (a representative zone is a healthy one).
    """
    steps = int(search_radius_m // grid_step_m)
    best: Optional[GeoPoint] = None
    best_score = float("inf")
    for i in range(-steps, steps + 1):
        for j in range(-steps, steps + 1):
            candidate = anchor.offset(i * grid_step_m, j * grid_step_m)
            if any(
                landscape.network(net)._patch_at(candidate) is not None
                for net in networks
            ):
                continue
            score = spot_flatness(
                landscape, candidate, networks, loop_radius_m=loop_radius_m
            )
            if score < best_score:
                best_score = score
                best = candidate
    return best if best is not None else anchor
