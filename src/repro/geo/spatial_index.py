"""Uniform-grid spatial index over circular regions.

:class:`UniformGridIndex` answers "which circle (if any) contains this
point" in O(candidates-per-cell) instead of O(circles): circles are
rasterized into the cells of a uniform grid laid over a local
projection, a query looks up its cell's candidate list, and the final
containment check uses the exact great-circle distance — so query
results are *identical* to a linear haversine scan in insertion order,
just cheaper.

Two details make this safe:

* candidate lists are a superset: each circle is inserted with padding
  that covers both the grid discretization and the worst-case
  equirectangular projection distortion at continental offsets from the
  projection origin (the NJ spot regions sit ~1500 km from the Madison
  origin, where the x-scale is off by a few percent);
* candidate lists preserve insertion order, so "first match wins"
  semantics carry over from the linear scans this index replaces
  (``CellularNetwork.binding_for`` / ``_patch_at``).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geo.coords import GeoPoint, LocalProjection, haversine_m_batch

_EMPTY: Tuple[int, ...] = ()

#: Relative + absolute padding applied when rasterizing a circle, to keep
#: candidate lists a superset of true matches under projection distortion.
_PAD_FRAC = 0.2
_PAD_M = 250.0


class UniformGridIndex:
    """First-match point-in-circle queries over a uniform cell grid."""

    def __init__(self, projection: LocalProjection, cell_m: float = 2000.0):
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self.projection = projection
        self.cell_m = float(cell_m)
        self._cells: dict = {}  # (ix, iy) -> list of item ids, insertion order
        self._centers: List[GeoPoint] = []
        self._radii: List[float] = []

    def __len__(self) -> int:
        return len(self._centers)

    def insert(self, center: GeoPoint, radius_m: float) -> int:
        """Register a circle; returns its id (= insertion index)."""
        if radius_m < 0:
            raise ValueError("radius_m must be non-negative")
        item_id = len(self._centers)
        self._centers.append(center)
        self._radii.append(float(radius_m))
        cx, cy = self.projection.to_xy(center)
        pad = radius_m * (1.0 + _PAD_FRAC) + _PAD_M + self.cell_m
        ix0 = math.floor((cx - pad) / self.cell_m)
        ix1 = math.floor((cx + pad) / self.cell_m)
        iy0 = math.floor((cy - pad) / self.cell_m)
        iy1 = math.floor((cy + pad) / self.cell_m)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                self._cells.setdefault((ix, iy), []).append(item_id)
        return item_id

    def candidates(self, x: float, y: float) -> Sequence[int]:
        """Candidate circle ids for a projected (x, y), insertion order."""
        return self._cells.get(
            (math.floor(x / self.cell_m), math.floor(y / self.cell_m)), _EMPTY
        )

    def query_point(self, point: GeoPoint) -> Optional[int]:
        """Id of the first (insertion-order) circle containing ``point``."""
        x, y = self.projection.to_xy(point)
        for item_id in self.candidates(x, y):
            if (
                self._centers[item_id].distance_to(point)
                <= self._radii[item_id]
            ):
                return item_id
        return None

    def query_batch(self, lat, lon, xy=None) -> np.ndarray:
        """Vectorized :meth:`query_point` over degree arrays.

        Returns an int64 array of first-match circle ids, -1 where no
        circle contains the point.  ``xy`` may pass precomputed projected
        coordinates (from :meth:`LocalProjection.to_xy_batch`) to avoid
        re-projection.
        """
        lat = np.asarray(lat, dtype=float)
        lon = np.asarray(lon, dtype=float)
        out = np.full(lat.shape, -1, dtype=np.int64)
        if not self._centers or lat.size == 0:
            return out
        if xy is None:
            x, y = self.projection.to_xy_batch(lat, lon)
        else:
            x, y = xy
        ix = np.floor(x / self.cell_m).astype(np.int64)
        iy = np.floor(y / self.cell_m).astype(np.int64)
        # Pack the cell coordinates into one sortable key per point.
        key = (ix << 32) ^ (iy & np.int64(0xFFFFFFFF))
        uniq, first, inverse = np.unique(
            key, return_index=True, return_inverse=True
        )
        for k, fi in enumerate(first):
            cand = self._cells.get((int(ix[fi]), int(iy[fi])))
            if not cand:
                continue
            sel = np.nonzero(inverse == k)[0]
            open_mask = np.ones(sel.shape, dtype=bool)
            for item_id in cand:
                if not open_mask.any():
                    break
                idx = sel[open_mask]
                c = self._centers[item_id]
                inside = (
                    haversine_m_batch(lat[idx], lon[idx], c.lat, c.lon)
                    <= self._radii[item_id]
                )
                hit = idx[inside]
                out[hit] = item_id
                open_mask[np.nonzero(open_mask)[0][inside]] = False
        return out
