"""Multi-SIM network selection (paper section 4.2.2, Table 6 / Fig 14a).

A multi-SIM phone can attach to any one carrier at a time.  Without
knowledge it picks randomly or stays on one network; with WiScape's
coarse per-zone estimates it switches to the locally best carrier.  The
paper measures ~30% lower HTTP latency for the WiScape-informed client
over the best fixed carrier on the short-segment drive.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.apps.webworkload import WebPage
from repro.clients.protocol import MeasurementType
from repro.datasets.records import TraceRecord
from repro.geo.zones import ZoneGrid, ZoneId
from repro.mobility.models import MovementModel
from repro.network.channel import MeasurementChannel
from repro.radio.network import Landscape
from repro.radio.technology import NetworkId


class ZonePerformanceMap:
    """Per-zone expected throughput per carrier — WiScape's product.

    Built either from a coordinator's published estimates or offline
    from trace records; applications query it to pick carriers.
    """

    def __init__(self, grid: ZoneGrid):
        self.grid = grid
        self._rates: Dict[ZoneId, Dict[NetworkId, float]] = {}

    def set_rate(self, zone_id: ZoneId, network: NetworkId, rate_bps: float) -> None:
        self._rates.setdefault(zone_id, {})[network] = rate_bps

    def rate(self, zone_id: ZoneId, network: NetworkId) -> Optional[float]:
        return self._rates.get(zone_id, {}).get(network)

    def best_network(
        self, zone_id: ZoneId, networks: Sequence[NetworkId]
    ) -> Optional[NetworkId]:
        """Highest expected throughput carrier in a zone, if known."""
        known = [
            (self.rate(zone_id, net), net)
            for net in networks
            if self.rate(zone_id, net) is not None
        ]
        if not known:
            return None
        return max(known, key=lambda pair: pair[0])[1]

    def zones(self) -> List[ZoneId]:
        return list(self._rates.keys())

    @classmethod
    def from_records(
        cls,
        records: Iterable[TraceRecord],
        grid: ZoneGrid,
        kind: MeasurementType = MeasurementType.TCP_DOWNLOAD,
        min_samples: int = 3,
    ) -> "ZonePerformanceMap":
        """Aggregate trace records into per-zone mean rates."""
        sums: Dict[ZoneId, Dict[NetworkId, List[float]]] = {}
        for rec in records:
            if rec.kind is not kind or math.isnan(rec.value):
                continue
            zone = grid.zone_id_for(rec.point)
            sums.setdefault(zone, {}).setdefault(rec.network, []).append(rec.value)
        pmap = cls(grid)
        for zone, per_net in sums.items():
            for net, vals in per_net.items():
                if len(vals) >= min_samples:
                    pmap.set_rate(zone, net, sum(vals) / len(vals))
        return pmap


# -- carrier selection strategies -------------------------------------------


class FixedSelector:
    """Always the same carrier (the baseline single-SIM user)."""

    def __init__(self, network: NetworkId):
        self.network = network

    def select(self, zone_id: ZoneId, request_index: int) -> NetworkId:
        return self.network


class RoundRobinSelector:
    """Cycle through carriers regardless of location."""

    def __init__(self, networks: Sequence[NetworkId]):
        if not networks:
            raise ValueError("need at least one network")
        self.networks = list(networks)

    def select(self, zone_id: ZoneId, request_index: int) -> NetworkId:
        return self.networks[request_index % len(self.networks)]


class BestZoneSelector:
    """WiScape-informed: the best known carrier for the current zone.

    Falls back to ``fallback`` (default: first carrier) in zones WiScape
    has no data for.
    """

    def __init__(
        self,
        perf_map: ZonePerformanceMap,
        networks: Sequence[NetworkId],
        fallback: Optional[NetworkId] = None,
    ):
        if not networks:
            raise ValueError("need at least one network")
        self.perf_map = perf_map
        self.networks = list(networks)
        self.fallback = fallback or self.networks[0]
        self.unknown_zone_hits = 0

    def select(self, zone_id: ZoneId, request_index: int) -> NetworkId:
        best = self.perf_map.best_network(zone_id, self.networks)
        if best is None:
            self.unknown_zone_hits += 1
            return self.fallback
        return best


class HysteresisSelector:
    """WiScape-informed selection with a switching threshold.

    The paper notes it did not account for "time to switch between
    links" (section 4.2.2); with a real switch cost, chasing every small
    per-zone advantage backfires.  This selector only leaves the current
    carrier when the candidate's expected rate beats it by at least
    ``gain_threshold`` (e.g. 0.2 = 20%), trading a little peak rate for
    far fewer switches.
    """

    def __init__(
        self,
        perf_map: ZonePerformanceMap,
        networks: Sequence[NetworkId],
        gain_threshold: float = 0.2,
        fallback: Optional[NetworkId] = None,
    ):
        if not networks:
            raise ValueError("need at least one network")
        if gain_threshold < 0:
            raise ValueError("gain_threshold must be non-negative")
        self.perf_map = perf_map
        self.networks = list(networks)
        self.gain_threshold = gain_threshold
        self.current: Optional[NetworkId] = fallback or self.networks[0]

    def select(self, zone_id: ZoneId, request_index: int) -> NetworkId:
        best = self.perf_map.best_network(zone_id, self.networks)
        if best is None or best == self.current:
            return self.current
        best_rate = self.perf_map.rate(zone_id, best)
        current_rate = self.perf_map.rate(zone_id, self.current)
        # Switch only on evidence of a big gain; an unknown current rate
        # is not evidence (unknown != bad, and switching costs).
        if (
            best_rate is not None
            and current_rate is not None
            and best_rate > current_rate * (1.0 + self.gain_threshold)
        ):
            self.current = best
        return self.current


# -- the multi-SIM client -----------------------------------------------------


@dataclass
class FetchResult:
    """Outcome of fetching a page list while driving."""

    total_duration_s: float
    per_page_s: List[float] = field(default_factory=list)
    bytes_fetched: int = 0
    switches: int = 0

    @property
    def mean_page_s(self) -> float:
        return (
            sum(self.per_page_s) / len(self.per_page_s)
            if self.per_page_s
            else 0.0
        )


class MultiSimClient:
    """A phone with SIMs for several carriers, fetching pages in order."""

    def __init__(
        self,
        landscape: Landscape,
        movement: MovementModel,
        grid: ZoneGrid,
        networks: Sequence[NetworkId],
        seed: int = 0,
        switch_delay_s: float = 0.0,
    ):
        if not networks:
            raise ValueError("need at least one network")
        self.landscape = landscape
        self.movement = movement
        self.grid = grid
        self.networks = list(networks)
        self.switch_delay_s = switch_delay_s
        rng_root = np.random.default_rng(seed)
        self._channels: Dict[NetworkId, MeasurementChannel] = {
            net: MeasurementChannel(
                landscape, net, np.random.default_rng(rng_root.integers(2**31))
            )
            for net in self.networks
        }

    def fetch(
        self,
        pages: Sequence[WebPage],
        selector,
        start_t: float,
    ) -> FetchResult:
        """Fetch ``pages`` back-to-back starting at ``start_t``.

        The client moves while downloading; each page is fetched over
        the carrier the selector picks for the zone the client is in
        when the request is issued.
        """
        t = start_t
        result = FetchResult(total_duration_s=0.0)
        current: Optional[NetworkId] = None
        for i, page in enumerate(pages):
            pos = self.movement.position(t)
            zone_id = self.grid.zone_id_for(pos)
            net = selector.select(zone_id, i)
            if current is not None and net != current:
                result.switches += 1
                t += self.switch_delay_s
            current = net
            download = self._channels[net].tcp_download(
                pos, t, size_bytes=page.size_bytes
            )
            result.per_page_s.append(download.duration_s)
            result.bytes_fetched += page.size_bytes
            t += download.duration_s
        result.total_duration_s = t - start_t
        return result
