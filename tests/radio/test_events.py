"""Tests for scheduled load events."""

import pytest

from repro.geo.regions import MADISON_CENTER
from repro.radio.events import LoadEvent, football_game_event
from repro.radio.technology import NetworkId
from repro.sim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR


def _event():
    return football_game_event(MADISON_CENTER, game_day=5, kickoff_hour=11.0)


class TestTimeWindow:
    def test_inactive_before(self):
        ev = _event()
        t = ev.start_s - 3600.0
        assert ev.latency_factor(NetworkId.NET_B, MADISON_CENTER, t) == 1.0

    def test_peak_during_core(self):
        ev = _event()
        t = (ev.start_s + ev.end_s) / 2.0
        assert ev.latency_factor(NetworkId.NET_B, MADISON_CENTER, t) == pytest.approx(3.7)

    def test_ramps(self):
        ev = _event()
        t = ev.start_s - ev.ramp_s / 2.0
        f = ev.latency_factor(NetworkId.NET_B, MADISON_CENTER, t)
        assert 1.0 < f < 3.7

    def test_inactive_after(self):
        ev = _event()
        t = ev.end_s + ev.ramp_s + 1.0
        assert ev.capacity_factor(NetworkId.NET_B, MADISON_CENTER, t) == 1.0


class TestSpaceFade:
    def test_full_inside_half_radius(self):
        ev = _event()
        t = (ev.start_s + ev.end_s) / 2.0
        near = MADISON_CENTER.offset(300.0, 0.0)
        assert ev.intensity(near, t) == pytest.approx(1.0)

    def test_zero_outside_radius(self):
        ev = _event()
        t = (ev.start_s + ev.end_s) / 2.0
        far = MADISON_CENTER.offset(5000.0, 0.0)
        assert ev.intensity(far, t) == 0.0

    def test_partial_fade(self):
        ev = _event()
        t = (ev.start_s + ev.end_s) / 2.0
        mid = MADISON_CENTER.offset(1200.0, 0.0)
        assert 0.0 < ev.intensity(mid, t) < 1.0


class TestCapacity:
    def test_capacity_divided_during_event(self):
        ev = _event()
        t = (ev.start_s + ev.end_s) / 2.0
        f = ev.capacity_factor(NetworkId.NET_B, MADISON_CENTER, t)
        assert f == pytest.approx(1.0 / 3.0)

    def test_unknown_network_unaffected(self):
        ev = LoadEvent(
            name="x",
            center=MADISON_CENTER,
            radius_m=1000.0,
            start_s=0.0,
            end_s=3600.0,
            latency_multiplier={NetworkId.NET_B: 2.0},
            capacity_divisor={NetworkId.NET_B: 2.0},
        )
        assert ev.latency_factor(NetworkId.NET_A, MADISON_CENTER, 1800.0) == 1.0


class TestFootballPreset:
    def test_on_first_saturday(self):
        ev = _event()
        assert ev.start_s == pytest.approx(
            5 * SECONDS_PER_DAY + 11 * SECONDS_PER_HOUR
        )
        assert ev.end_s - ev.start_s == pytest.approx(3 * SECONDS_PER_HOUR)

    def test_netb_hit_hardest(self):
        ev = _event()
        assert (
            ev.latency_multiplier[NetworkId.NET_B]
            > ev.latency_multiplier[NetworkId.NET_C]
            > 1.0
        )
