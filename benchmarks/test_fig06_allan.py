"""Figure 6: Allan deviation vs averaging interval — epoch selection.

The Allan deviation of a zone's UDP throughput series has a minimum at
the interval where the metric is most stable: ~75 minutes for the
Madison-like zone, ~15 minutes for the busier New Brunswick zone.  That
interval is the zone's epoch.
"""

import math

import numpy as np

from repro.analysis.tables import TextTable
from repro.clients.protocol import MeasurementType
from repro.core.epochs import EpochEstimator
from repro.radio.technology import NetworkId
from repro.stats.allan import select_epoch_from_profile


def _series(records, net):
    pts = sorted(
        (r.time_s, r.value)
        for r in records
        if r.kind is MeasurementType.UDP_TRAIN
        and r.network is net
        and not math.isnan(r.value)
    )
    return [t for t, _ in pts], [v for _, v in pts]


def _profiles(proximate_traces):
    estimator = EpochEstimator(
        min_epoch_s=120.0, max_epoch_s=4.0 * 3600.0, grid_s=45.0,
        candidate_count=22,
    )
    out = {}
    for region in ("wi", "nj"):
        times, values = _series(proximate_traces[region], NetworkId.NET_B)
        profile = estimator.profile(times, values)
        out[region] = (profile, select_epoch_from_profile(profile))
    return out


def test_fig06_allan_deviation_epochs(proximate_traces, benchmark):
    result = benchmark.pedantic(_profiles, args=(proximate_traces,), rounds=1, iterations=1)

    epochs = {}
    for region, (profile, epoch) in result.items():
        table = TextTable(["tau (min)", "Allan dev"], formats=[".1f", ".4f"])
        for tau, sigma in profile:
            table.add_row(tau / 60.0, sigma)
        print(f"\nFig 6 — Allan deviation profile, NetB, {region.upper()} zone")
        print(table.render())
        print(f"selected epoch: {epoch / 60.0:.1f} minutes")
        epochs[region] = epoch

    # Shape (paper: WI ~75 min, NJ ~15 min):
    assert 40.0 * 60.0 <= epochs["wi"] <= 150.0 * 60.0
    assert 5.0 * 60.0 <= epochs["nj"] <= 40.0 * 60.0
    assert epochs["wi"] > 2.0 * epochs["nj"]

    # The profile is genuinely non-monotonic: deviation at the epoch is
    # clearly below both the short-tau and long-tau ends.
    for region, (profile, epoch) in result.items():
        sigmas = dict(profile)
        taus = sorted(sigmas)
        at_epoch = min(s for t, s in profile if abs(t - epoch) < 1.0)
        assert sigmas[taus[0]] > 1.2 * at_epoch
